package kvstore

import (
	"bytes"
	"testing"

	"versionstamp/internal/core"
)

func TestSyncKeyTransferAndReconcile(t *testing.T) {
	a := NewReplica("a")
	b := NewReplica("b")
	a.Put("k", []byte("v1"))

	res, err := SyncKey(a, b, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transferred != 1 {
		t.Fatalf("Transferred = %d, want 1", res.Transferred)
	}
	if v, ok := b.Get("k"); !ok || string(v) != "v1" {
		t.Fatalf("b has %q, %v", v, ok)
	}

	// Dominating update at a propagates.
	a.Put("k", []byte("v2"))
	res, err = SyncKey(a, b, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconciled != 1 {
		t.Fatalf("Reconciled = %d, want 1", res.Reconciled)
	}
	if v, _ := b.Get("k"); string(v) != "v2" {
		t.Fatalf("b has %q", v)
	}

	// Untouched keys are untouched: SyncKey of an absent key is a no-op.
	res, err = SyncKey(a, b, "nope", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transferred+res.Reconciled+res.Merged+res.Pruned+len(res.Conflicts) != 0 {
		t.Fatalf("absent key produced %+v", res)
	}
}

func TestSyncKeyConflict(t *testing.T) {
	a := NewReplica("a")
	b := NewReplica("b")
	a.Put("k", []byte("base"))
	if _, err := SyncKey(a, b, "k", nil); err != nil {
		t.Fatal(err)
	}
	a.Put("k", []byte("at-a"))
	b.Put("k", []byte("at-b"))

	res, err := SyncKey(a, b, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 1 || res.Conflicts[0] != "k" {
		t.Fatalf("Conflicts = %v", res.Conflicts)
	}

	res, err = SyncKey(a, b, "k", KeepBoth([]byte("|")))
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged != 1 {
		t.Fatalf("Merged = %d, want 1", res.Merged)
	}
	va, _ := a.Get("k")
	vb, _ := b.Get("k")
	if !bytes.Equal(va, vb) {
		t.Fatalf("copies differ after merge: %q vs %q", va, vb)
	}
}

func TestSyncKeySelf(t *testing.T) {
	a := NewReplica("a")
	if _, err := SyncKey(a, a, "k", nil); err == nil {
		t.Fatal("self-sync should error")
	}
}

func TestForkCopyKeepsFrontier(t *testing.T) {
	r := NewReplica("r")
	if _, ok := r.ForkCopy("missing"); ok {
		t.Fatal("ForkCopy of a missing key should report ok=false")
	}
	r.Put("k", []byte("v"))
	before, _ := r.Version("k")
	cp, ok := r.ForkCopy("k")
	if !ok {
		t.Fatal("ForkCopy failed")
	}
	after, _ := r.Version("k")
	if string(cp.Value) != "v" || cp.Deleted {
		t.Fatalf("copy = %+v", cp)
	}
	// The detached copy and the retained copy are forked siblings: equal
	// update knowledge, disjoint ids (joinable).
	if core.Compare(cp.Stamp, after.Stamp) != core.Equal {
		t.Fatalf("fork siblings compare %v, want Equal", core.Compare(cp.Stamp, after.Stamp))
	}
	if _, err := core.Join(cp.Stamp, after.Stamp); err != nil {
		t.Fatalf("fork siblings must be joinable: %v", err)
	}
	// The retained copy still carries the same update knowledge.
	if core.Compare(before.Stamp, after.Stamp) != core.Equal {
		t.Fatal("fork must not change update knowledge")
	}
	// Mutating the copy's value must not alias the stored one.
	cp.Value[0] = 'X'
	if v, _ := r.Get("k"); string(v) != "v" {
		t.Fatalf("stored value aliased: %q", v)
	}
}

func TestMergeVersionedInstallsWhenAbsent(t *testing.T) {
	src := NewReplica("src")
	dst := NewReplica("dst")
	src.Put("k", []byte("v"))
	cp, _ := src.ForkCopy("k")

	res, err := dst.MergeVersioned("k", cp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transferred != 1 {
		t.Fatalf("Transferred = %d", res.Transferred)
	}
	if v, ok := dst.Get("k"); !ok || string(v) != "v" {
		t.Fatalf("dst has %q, %v", v, ok)
	}
	// The installed copy and the source are now ordinary fork siblings: a
	// later Sync treats them as equivalent, not conflicting.
	sv, _ := src.Version("k")
	dv, _ := dst.Version("k")
	if core.Compare(sv.Stamp, dv.Stamp) != core.Equal {
		t.Fatalf("compare = %v, want Equal", core.Compare(sv.Stamp, dv.Stamp))
	}
}

func TestMergeVersionedDominatesAndAbsorbs(t *testing.T) {
	src := NewReplica("src")
	dst := NewReplica("dst")
	src.Put("k", []byte("old"))
	if _, err := SyncKey(src, dst, "k", nil); err != nil {
		t.Fatal(err)
	}

	// Incoming dominates: hint carries a newer write.
	src.Put("k", []byte("new"))
	cp, _ := src.ForkCopy("k")
	res, err := dst.MergeVersioned("k", cp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconciled != 1 {
		t.Fatalf("Reconciled = %d (%+v)", res.Reconciled, res)
	}
	if v, _ := dst.Get("k"); string(v) != "new" {
		t.Fatalf("dst = %q", v)
	}

	// Incoming obsolete: local wrote past it meanwhile. Local value stays;
	// the stale copy's id is still absorbed (Pruned).
	cp2, _ := src.ForkCopy("k")
	dst.Put("k", []byte("newer"))
	res, err = dst.MergeVersioned("k", cp2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned != 1 {
		t.Fatalf("Pruned = %d (%+v)", res.Pruned, res)
	}
	if v, _ := dst.Get("k"); string(v) != "newer" {
		t.Fatalf("dst = %q", v)
	}
}

func TestMergeVersionedConflict(t *testing.T) {
	src := NewReplica("src")
	dst := NewReplica("dst")
	src.Put("k", []byte("base"))
	if _, err := SyncKey(src, dst, "k", nil); err != nil {
		t.Fatal(err)
	}
	src.Put("k", []byte("from-src"))
	dst.Put("k", []byte("at-dst"))
	cp, _ := src.ForkCopy("k")

	// Nil resolver: conflict reported, nothing consumed or changed.
	res, err := dst.MergeVersioned("k", cp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 1 {
		t.Fatalf("Conflicts = %v", res.Conflicts)
	}
	if v, _ := dst.Get("k"); string(v) != "at-dst" {
		t.Fatalf("dst mutated on reported conflict: %q", v)
	}

	// With a resolver the same copy merges and dominates both inputs.
	res, err = dst.MergeVersioned("k", cp, KeepBoth([]byte("|")))
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged != 1 {
		t.Fatalf("Merged = %d", res.Merged)
	}
	dv, _ := dst.Version("k")
	if core.Compare(dv.Stamp, cp.Stamp) != core.After {
		t.Fatalf("merged stamp should dominate the input, got %v", core.Compare(dv.Stamp, cp.Stamp))
	}
}

func TestMergeVersionedIndependentCopies(t *testing.T) {
	dst := NewReplica("dst")
	dst.Put("k", []byte("same"))
	in := Versioned{Value: []byte("same"), Stamp: core.Seed().Update()}

	res, err := dst.MergeVersioned("k", in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconciled != 1 {
		t.Fatalf("equal independent copies: %+v", res)
	}

	dst2 := NewReplica("dst2")
	dst2.Put("k", []byte("left"))
	in2 := Versioned{Value: []byte("right"), Stamp: core.Seed().Update()}
	res, err = dst2.MergeVersioned("k", in2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 1 {
		t.Fatalf("independent differing copies without resolver: %+v", res)
	}
	res, err = dst2.MergeVersioned("k", in2, KeepBoth([]byte("|")))
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged != 1 {
		t.Fatalf("independent differing copies with resolver: %+v", res)
	}
	if v, _ := dst2.Get("k"); string(v) != "left|right" {
		t.Fatalf("merged value = %q", v)
	}
}

// Drain symmetry: ForkCopy then MergeVersioned at another replica leaves
// the pair in the same relation a direct SyncKey would have produced —
// stamps Equal, values equal, and a follow-up sync moves nothing.
func TestForkCopyMergeEquivalentToSync(t *testing.T) {
	a := NewReplica("a")
	b := NewReplica("b")
	a.Put("k", []byte("v"))
	cp, _ := a.ForkCopy("k")
	if _, err := b.MergeVersioned("k", cp, nil); err != nil {
		t.Fatal(err)
	}
	res, err := SyncKey(a, b, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transferred+res.Reconciled+res.Merged != 0 {
		t.Fatalf("follow-up sync moved data: %+v", res)
	}
	va, _ := a.Version("k")
	vb, _ := b.Version("k")
	if core.Compare(va.Stamp, vb.Stamp) != core.Equal {
		t.Fatalf("stamps compare %v", core.Compare(va.Stamp, vb.Stamp))
	}
}

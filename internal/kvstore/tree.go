package kvstore

import (
	"fmt"
	"math/bits"
	"sort"

	"versionstamp/internal/encoding"
)

// Adaptive digest trees: the store half of the v4 anti-entropy protocol.
// The v3 hierarchy is frozen at two levels (root hash -> stripe summaries ->
// full per-stripe digest lists), so at millions of keys one divergent key
// re-ships a whole stripe's digest list every round. Here each stripe's
// digests are arranged into a k-ary hash tree over their 64-bit tree
// positions (encoding.TreePos): every node hashes its subtree, the leaf
// width and depth are derived from the stripe's live key count (TreeShape),
// and a divergent key is located by descending only the differing children
// — O(log n) fixed-size frames instead of O(stripe) digests.
//
// The tree is served from a per-stripe cache keyed by the same epoch counter
// as the summary cache, so converged stripes answer in O(1) without touching
// a key. When a stripe's key count crosses a width threshold the next
// rebuild simply picks the deeper (or shallower) shape — an online rebalance
// that needs no coordination, because the wire protocol always descends at
// the *client's* declared shape: a server whose own shape differs evaluates
// its data under the client's (fanout, depth) on demand, exactly as
// SummariesScoped regroups digests under a foreign stripe layout. Converged
// replicas hold equal per-stripe key counts, so their shapes agree and both
// sides run fully cached.

const (
	// treeFanout is the fan-out of locally built trees: 4 position bits per
	// level. The wire codec accepts any power of two in [2, 64]; a constant
	// local fan-out keeps converged peers' shapes equal whenever their key
	// counts are.
	treeFanout = 16

	// treeLeafTarget is the key count a leaf aims to hold: small enough
	// that a leaf's digest run is a cheap frame, large enough that the tree
	// stays shallow.
	treeLeafTarget = 32

	// maxOwnTreeDepth caps locally chosen depth well under the codec's
	// MaxTreeDepth; 16^8 leaves outruns any keyspace this store can hold.
	maxOwnTreeDepth = 8
)

// TreeShape returns the (fanout, depth) this replica builds a digest tree
// with for a stripe of n keys: the shallowest depth whose leaf count keeps
// leaves near treeLeafTarget keys. Deterministic in n, so converged
// replicas (equal counts) always agree on shape, and a stripe crossing a
// count threshold rebalances to the new depth on its next rebuild.
func TreeShape(n int) (fanout, depth int) {
	fanout = treeFanout
	leaves := (n + treeLeafTarget - 1) / treeLeafTarget
	depth = 1
	for span := fanout; span < leaves && depth < maxOwnTreeDepth; span *= fanout {
		depth++
	}
	return fanout, depth
}

// TreeRange is a half-open interval [Lo, Hi) of tree positions; Hi == 0
// means "to the end of the 64-bit position space" — the natural overflow of
// (path+1)<<shift for the topmost path. The zero TreeRange covers the whole
// space.
type TreeRange struct{ Lo, Hi uint64 }

// Contains reports whether position p falls inside the range.
func (rg TreeRange) Contains(p uint64) bool {
	return p >= rg.Lo && (rg.Hi == 0 || p < rg.Hi)
}

// RangesContain reports whether any range contains p. A nil slice means
// "unscoped" and contains everything — the whole-stripe semantics of the
// pre-tree protocols.
func RangesContain(ranges []TreeRange, p uint64) bool {
	if ranges == nil {
		return true
	}
	for _, rg := range ranges {
		if rg.Contains(p) {
			return true
		}
	}
	return false
}

// NodeRange returns the position interval covered by the node at (level,
// path) in a tree of the given fanout. Level 0 path 0 is the whole space.
func NodeRange(fanout, level int, path uint64) TreeRange {
	shift := uint(64 - level*bits.TrailingZeros(uint(fanout)))
	if shift >= 64 {
		return TreeRange{}
	}
	return TreeRange{Lo: path << shift, Hi: (path + 1) << shift}
}

// treeNode is one materialized node: its path at its level, the digest run
// it spans (tree order), and its subtree hash.
type treeNode struct {
	path       uint64
	start, end int32
	hash       uint64
}

// DigestTree is an immutable k-ary hash tree over one stripe's digests,
// ordered by (TreePos, key). Leaf nodes (level == depth) hash their digest
// run with encoding.SummarizeDigests; internal nodes fold each non-empty
// child's (index, hash) pair, so the root pins the whole stripe — and
// depends on the declared shape, which is why the wire always compares trees
// at one agreed shape. Safe for concurrent use once built.
type DigestTree struct {
	fanout, depth, fbits int
	pos                  []uint64          // TreePos per digest, tree order
	digests              []encoding.Digest // sorted by (pos, key)
	levels               [][]treeNode      // levels[l]: non-empty nodes, ascending path
}

// treeSorter sorts pos and digests together by (pos, key).
type treeSorter struct {
	pos []uint64
	ds  []encoding.Digest
}

func (s *treeSorter) Len() int { return len(s.pos) }
func (s *treeSorter) Less(a, b int) bool {
	if s.pos[a] != s.pos[b] {
		return s.pos[a] < s.pos[b]
	}
	return s.ds[a].Key < s.ds[b].Key
}
func (s *treeSorter) Swap(a, b int) {
	s.pos[a], s.pos[b] = s.pos[b], s.pos[a]
	s.ds[a], s.ds[b] = s.ds[b], s.ds[a]
}

// buildDigestTree arranges ds (any order; not aliased afterwards) into a
// tree of the given shape. The shape must satisfy encoding.ValidTreeShape.
func buildDigestTree(ds []encoding.Digest, fanout, depth int) *DigestTree {
	t := &DigestTree{
		fanout: fanout, depth: depth,
		fbits:   bits.TrailingZeros(uint(fanout)),
		pos:     make([]uint64, len(ds)),
		digests: make([]encoding.Digest, len(ds)),
	}
	copy(t.digests, ds)
	for i := range t.digests {
		t.pos[i] = encoding.TreePos(t.digests[i].Key)
	}
	sort.Sort(&treeSorter{pos: t.pos, ds: t.digests})

	t.levels = make([][]treeNode, depth+1)
	// Leaves: group the ordered digests by their top depth×fbits position
	// bits and hash each run.
	shift := uint(64 - depth*t.fbits)
	var leaves []treeNode
	for i := 0; i < len(t.digests); {
		p := t.pos[i] >> shift
		j := i
		for j < len(t.digests) && t.pos[j]>>shift == p {
			j++
		}
		leaves = append(leaves, treeNode{
			path: p, start: int32(i), end: int32(j),
			hash: encoding.SummarizeDigests(t.digests[i:j]),
		})
		i = j
	}
	t.levels[depth] = leaves
	// Internal levels: fold each run of children sharing a parent path.
	for l := depth - 1; l >= 0; l-- {
		child := t.levels[l+1]
		var cur []treeNode
		for i := 0; i < len(child); {
			p := child[i].path >> t.fbits
			h := encoding.RootSummarySeed
			start, end := child[i].start, child[i].end
			j := i
			for j < len(child) && child[j].path>>t.fbits == p {
				h = encoding.FoldSummary(h, child[j].path&uint64(fanout-1))
				h = encoding.FoldSummary(h, child[j].hash)
				end = child[j].end
				j++
			}
			cur = append(cur, treeNode{path: p, start: start, end: end, hash: h})
			i = j
		}
		t.levels[l] = cur
	}
	return t
}

// Fanout returns the tree's fan-out.
func (t *DigestTree) Fanout() int { return t.fanout }

// Depth returns the tree's leaf level.
func (t *DigestTree) Depth() int { return t.depth }

// Len returns the number of digests the tree spans.
func (t *DigestTree) Len() int { return len(t.digests) }

// Root returns the tree's root hash; an empty stripe roots at
// encoding.EmptySummary regardless of shape.
func (t *DigestTree) Root() uint64 {
	if len(t.levels[0]) == 0 {
		return encoding.EmptySummary
	}
	return t.levels[0][0].hash
}

// Children snapshots the children of the node at (level, path): bit c of
// the bitmap is set iff child c is non-empty, with one hash per set bit in
// child order. An absent or bottom-level node yields an all-zero bitmap.
func (t *DigestTree) Children(level int, path uint64) (bitmap []byte, hashes []uint64) {
	bitmap = make([]byte, encoding.TreeBitmapLen(t.fanout))
	if level < 0 || level >= t.depth {
		return bitmap, nil
	}
	lo := path << uint(t.fbits)
	hi := lo + uint64(t.fanout)
	lvl := t.levels[level+1]
	i := sort.Search(len(lvl), func(i int) bool { return lvl[i].path >= lo })
	for ; i < len(lvl) && lvl[i].path < hi; i++ {
		c := int(lvl[i].path & uint64(t.fanout-1))
		encoding.BitmapSet(bitmap, c)
		hashes = append(hashes, lvl[i].hash)
	}
	return bitmap, hashes
}

// Run returns the digest run (tree order) under the node at (level, path).
// The slice aliases the tree; callers must treat it as read-only.
func (t *DigestTree) Run(level int, path uint64) []encoding.Digest {
	return t.RunRange(NodeRange(t.fanout, level, path))
}

// RunRange returns the digests whose positions fall inside rg (tree order).
// The slice aliases the tree; callers must treat it as read-only.
func (t *DigestTree) RunRange(rg TreeRange) []encoding.Digest {
	lo := sort.Search(len(t.pos), func(i int) bool { return t.pos[i] >= rg.Lo })
	hi := len(t.pos)
	if rg.Hi != 0 {
		hi = sort.Search(len(t.pos), func(i int) bool { return t.pos[i] >= rg.Hi })
	}
	return t.digests[lo:hi]
}

// stripeTreeShaped returns stripe i's digest tree. fanout == 0 selects the
// replica's own shape (TreeShape of the live count). The tree is cached per
// stripe epoch when the requested shape is the stripe's own shape — the
// converged steady state, where peers' counts (hence shapes) agree — and
// built as a throwaway snapshot otherwise, so one foreign-shaped peer
// cannot thrash the cache.
func (r *Replica) stripeTreeShaped(i, fanout, depth int) *DigestTree {
	sh := &r.shards[i]
	sh.cacheMu.Lock()
	defer sh.cacheMu.Unlock()
	_, ds := r.stripeCacheLocked(i)
	e := sh.cacheEpoch
	ownF, ownD := TreeShape(len(ds))
	if fanout == 0 {
		fanout, depth = ownF, ownD
	}
	if sh.treeValid && sh.treeEpoch == e && sh.tree.fanout == fanout && sh.tree.depth == depth {
		return sh.tree
	}
	t := buildDigestTree(ds, fanout, depth)
	if fanout == ownF && depth == ownD {
		sh.tree, sh.treeEpoch, sh.treeValid = t, e, true
	}
	return t
}

// StripeTree returns stripe idx's digest tree at the replica's own shape,
// lazily recomputed only when the stripe mutated.
func (r *Replica) StripeTree(idx int) (*DigestTree, error) {
	if idx < 0 || idx >= len(r.shards) {
		return nil, fmt.Errorf("kvstore: shard %d out of range of %d", idx, len(r.shards))
	}
	return r.stripeTreeShaped(idx, 0, 0), nil
}

// TreeScoped returns the digest tree a peer with `of` stripes sees for its
// stripe idx, evaluated at the peer-declared (fanout, depth). When the
// layouts agree this is the cached fast path (or a one-off build at the
// foreign shape); otherwise every digest is regrouped under the foreign
// layout first — correct for any pair of layouts, exactly like
// SummariesScoped, just not O(1) on a quiet store.
func (r *Replica) TreeScoped(idx, of, fanout, depth int) (*DigestTree, error) {
	if of < 1 || idx < 0 || idx >= of {
		return nil, fmt.Errorf("kvstore: shard %d out of range of %d", idx, of)
	}
	if !encoding.ValidTreeShape(fanout, depth) {
		return nil, fmt.Errorf("kvstore: bad tree shape fanout=%d depth=%d", fanout, depth)
	}
	if of == len(r.shards) {
		return r.stripeTreeShaped(idx, fanout, depth), nil
	}
	var group []encoding.Digest
	for _, d := range r.Digest() {
		if ShardIndex(d.Key, of) == idx {
			group = append(group, d)
		}
	}
	return buildDigestTree(group, fanout, depth), nil
}

// TreeRootsScoped returns one digest-tree root per stripe of a peer layout
// with `of` stripes, each at the shape this replica's own count policy
// picks for that stripe — the v4 root-phase payload. Converged peers hold
// equal per-stripe counts, so their shape choices (and therefore roots)
// agree.
func (r *Replica) TreeRootsScoped(of int) ([]uint64, error) {
	if of < 1 {
		return nil, fmt.Errorf("kvstore: tree layout of %d stripes", of)
	}
	out := make([]uint64, of)
	if of == len(r.shards) {
		for i := range r.shards {
			out[i] = r.stripeTreeShaped(i, 0, 0).Root()
		}
		return out, nil
	}
	groups := make([][]encoding.Digest, of)
	for _, d := range r.Digest() {
		i := ShardIndex(d.Key, of)
		groups[i] = append(groups[i], d)
	}
	for i, g := range groups {
		f, dep := TreeShape(len(g))
		out[i] = buildDigestTree(g, f, dep).Root()
	}
	return out, nil
}

// Package kvstore implements an optimistically replicated key-value store
// that uses version stamps for per-key causality tracking — the kind of
// system the paper's introduction motivates: replicas synchronize pairwise
// whenever connectivity allows, updates happen anywhere anytime, and new
// replicas appear under partition with no identifier coordination.
//
// Every stored copy of a key is one element of that key's fork-join
// frontier: the first write seeds a stamp, local writes update it,
// transferring a key to another replica forks it, and synchronization joins
// and re-forks. Comparing two replicas' stamps for a key classifies the
// copies as equivalent, obsolete or conflicting, exactly as Section 2 of
// the paper prescribes; deletions are tombstones so removal also propagates
// causally.
//
// # Shard layout
//
// A Replica is striped over N lock-per-shard partitions (DefaultShards
// unless NewReplicaShards says otherwise). Every key is owned by exactly
// one shard, chosen by ShardIndex — an FNV-1a hash of the key modulo the
// shard count — and each shard guards its own map with its own
// sync.RWMutex. Point operations (Put/Get/Delete/Version) therefore
// contend only with operations on the same shard; batched operations
// (PutBatch/GetBatch/DeleteBatch) group keys by shard and take each shard
// lock once; and Sync between two replicas with the same shard count
// reconciles shard pairs concurrently, one goroutine per stripe, instead
// of serializing the whole keyspace under a single lock. Because version
// stamps track causality per key, no cross-shard coordination is ever
// needed for correctness — sharding changes only the locking granularity,
// never the fork/update/join semantics.
//
// Causal ordering is defined only among copies descending from one seed:
// originate each key at a single replica and let Sync/Clone propagate it.
// Keys created independently at two replicas share no causal ancestor;
// Sync detects this (their stamp ids overlap, which Invariant I2 rules out
// within one system), reconciles by value and restarts the key's stamp
// system — sound for a two-replica deployment, best-effort beyond that
// (see reconcileIndependent).
package kvstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"versionstamp/internal/core"
	"versionstamp/internal/encoding"
	"versionstamp/internal/pagecache"
	"versionstamp/internal/storage"
)

// DefaultShards is the stripe count of replicas built with NewReplica.
// 32 stripes keep lock contention negligible up to several dozen cores
// while the per-replica overhead stays a few hundred bytes.
const DefaultShards = 32

// Versioned is one replica's copy of a key: the value, a deletion marker,
// and the version stamp tracking the copy's causal history.
type Versioned struct {
	// Value is the stored bytes (nil for tombstones).
	Value []byte
	// Deleted marks a tombstone: the key was deleted at or after the
	// updates recorded in Stamp.
	Deleted bool
	// Stamp is this copy's version stamp within the key's frontier.
	Stamp core.Stamp
}

// Resolver merges two conflicting copies of a key during Sync, returning
// the merged value (merged deletions are expressed by returning
// deleted=true).
type Resolver func(key string, a, b Versioned) (value []byte, deleted bool, err error)

// KeepBoth is a Resolver that concatenates both values with a separator —
// a simple deterministic merge for demonstration and tests. Deletion loses
// against a concurrent write.
func KeepBoth(sep []byte) Resolver {
	return func(_ string, a, b Versioned) ([]byte, bool, error) {
		switch {
		case a.Deleted && b.Deleted:
			return nil, true, nil
		case a.Deleted:
			return b.Value, false, nil
		case b.Deleted:
			return a.Value, false, nil
		default:
			merged := make([]byte, 0, len(a.Value)+len(sep)+len(b.Value))
			merged = append(merged, a.Value...)
			merged = append(merged, sep...)
			merged = append(merged, b.Value...)
			return merged, false, nil
		}
	}
}

// shard is one stripe of a replica: an independently locked partition of
// the keyspace.
type shard struct {
	mu   sync.RWMutex
	data map[string]Versioned

	// cold is the checkpoint-resident index of a paged stripe (nil
	// otherwise): per-key metadata whose value bytes live in the checkpoint
	// file, faulted in on demand. See paged.go. Keys in data shadow cold.
	cold *coldStripe

	// tombs maps every currently tombstoned key to the stripe epoch its
	// tombstone was last (re-)established at — the ledger the stamp-safe
	// tombstone GC reads. Maintained eagerly by every mutation path so
	// paged stripes never need a scan to answer "which tombstones, since
	// when".
	tombs map[string]uint64

	// epoch advances on every write-lock acquisition (conservatively: a
	// locked stripe may have mutated). The summary cache below is keyed by
	// it, so repeated reads over a quiet stripe do no per-key work.
	epoch atomic.Uint64

	// cacheMu guards the lazily computed digest cache: the stripe's digests
	// sorted by key plus their summary hash, both valid for epoch
	// cacheEpoch only. Mutators never touch these fields — they just bump
	// epoch — so the lock order cacheMu -> mu.RLock can never deadlock
	// against writers, which take mu alone.
	cacheMu     sync.Mutex
	cacheValid  bool
	cacheEpoch  uint64
	summary     uint64
	digestCache []encoding.Digest

	// tree caches the stripe's adaptive digest tree (tree.go) at the shape
	// the replica itself chooses for the stripe's key count, valid for
	// epoch treeEpoch only. Shares cacheMu with the digest cache above;
	// foreign-shape requests build throwaway trees and never touch it.
	treeValid bool
	treeEpoch uint64
	tree      *DigestTree

	// quar mirrors the replica's quarantine set for this stripe as a lock-
	// free flag, so the per-write logSet check costs one atomic load. The
	// authoritative record (with the damage report) is Replica.quar.
	quar atomic.Bool
}

// lockMut write-locks the stripe for a mutation and advances its epoch so
// cached summaries are recomputed on the next read. Unlock with mu.Unlock.
func (sh *shard) lockMut() {
	sh.mu.Lock()
	sh.epoch.Add(1)
}

// Replica is one store replica. The label is purely cosmetic — replicas
// have no identity beyond their stamps, which is the point of the paper.
// Replica is safe for concurrent use; see the package comment for the
// shard layout.
type Replica struct {
	label  string
	shards []shard

	// backend, when non-nil, receives every mutation as an appended record
	// before the stripe lock releases (see Open/OpenBackend in durable.go).
	// Replicas built with NewReplica keep it nil: the historical all-in-
	// memory behaviour, with a single pointer check per write as its cost.
	backend storage.Backend

	// persistMu guards persistErr (the first backend append failure since
	// the last clean checkpoint) and persistSeq (bumped on every failure,
	// letting Checkpoint tell "healed" from "failed again meanwhile").
	// Writes keep succeeding in memory after a persist error; durable
	// deployments check PersistErr (Checkpoint and Close surface it too).
	persistMu  sync.Mutex
	persistErr error
	persistSeq uint64

	// quarMu guards the quarantine record (stripe index -> damage report)
	// and the incremental scrubber's cursor. A quarantined stripe serves
	// reads from whatever replayed, refuses durable appends, and waits for
	// peer repair (see QuarantineStripe/RepairStripe in durable.go).
	quarMu      sync.Mutex
	quar        map[int]error
	scrubCursor int

	// Paged residency (see paged.go): pager re-reads value bytes the
	// stripes dropped, cache bounds how many faulted values stay resident.
	// All nil/false for ordinary replicas.
	paged bool
	pager storage.Pager
	cache *pagecache.Cache

	// asyncBE is the backend's group-commit surface when it has one; logSet
	// stages appends through it and parks the durability barriers in
	// pending, drained by awaitDurable after the stripe locks release.
	asyncBE storage.AsyncBackend
	pendMu  sync.Mutex
	pending []func() error
}

// NewReplica creates an empty replica with a cosmetic label and
// DefaultShards stripes.
func NewReplica(label string) *Replica {
	return NewReplicaShards(label, DefaultShards)
}

// NewReplicaShards creates an empty replica striped over n shards
// (n >= 1). A single shard reproduces the pre-sharding behavior: one lock
// over one map.
func NewReplicaShards(label string, n int) *Replica {
	if n < 1 {
		n = 1
	}
	r := &Replica{label: label, shards: make([]shard, n)}
	for i := range r.shards {
		r.shards[i].data = make(map[string]Versioned)
		r.shards[i].tombs = make(map[string]uint64)
	}
	return r
}

// Label returns the cosmetic label.
func (r *Replica) Label() string { return r.label }

// Shards returns the stripe count.
func (r *Replica) Shards() int { return len(r.shards) }

// ShardIndex returns the shard owning key in a replica striped over n
// shards. It is exported so network layers can scope a sync round to one
// stripe and compute the same partition on both endpoints.
func ShardIndex(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// shardFor returns the stripe owning key.
func (r *Replica) shardFor(key string) *shard {
	return &r.shards[ShardIndex(key, len(r.shards))]
}

// logSet appends key's new state to stripe si's durable log. Called with the
// stripe's write lock held, so the log order is exactly the apply order. A
// backend failure is recorded (first one wins) and the in-memory write
// stands; see PersistErr.
func (r *Replica) logSet(si int, key string, v Versioned) {
	if r.backend == nil {
		return
	}
	if r.shards[si].quar.Load() {
		// Quarantined: the durable log is damaged and latched; nothing may
		// land after the bad bytes. The in-memory write stands (repair will
		// checkpoint the full stripe state), and PersistErr already reports
		// the quarantine.
		return
	}
	rec := storage.Record{Entry: encoding.Entry{
		Key: key, Value: v.Value, Deleted: v.Deleted, Stamp: v.Stamp,
	}}
	if r.asyncBE != nil {
		// Group commit: stage the append under the stripe lock (preserving
		// log order) and park the durability barrier; the public mutator
		// drains it after the lock releases, so many writers' appends share
		// one fsync. Nothing is acknowledged before the barrier resolves.
		wait, err := r.asyncBE.AppendAsync(si, rec)
		if err != nil {
			r.notePersistErr(err)
			return
		}
		if wait != nil {
			r.enqueueWait(wait)
		}
		return
	}
	if err := r.backend.Append(si, rec); err != nil {
		r.notePersistErr(err)
	}
}

// logAdopt persists a wholesale stripe replacement (Adopt/AdoptShard) as a
// backend checkpoint rather than a reset plus one record per key: adoption
// rewrites the entire stripe anyway, so a checkpoint leaves the log empty
// instead of growing it by the keyspace on every whole-snapshot sync
// round. Stripe write lock held, so no append interleaves.
func (r *Replica) logAdopt(si int) {
	if r.backend == nil {
		return
	}
	if r.shards[si].quar.Load() {
		// Repair syncs adopt state into a quarantined stripe before
		// RepairStripe re-checkpoints it; persisting here would clear the
		// backend's quarantine behind the replica's back.
		return
	}
	if err := r.checkpointShardLocked(si); err != nil {
		r.notePersistErr(err)
	}
}

// logKey re-reads key's current state and logs it — the helper the sync
// paths use after syncKey mutated a raw shard map in place.
func (r *Replica) logKey(key string) {
	if r.backend == nil {
		return
	}
	si := ShardIndex(key, len(r.shards))
	if v, ok := r.shards[si].data[key]; ok {
		r.logSet(si, key, v)
	}
}

// logSyncMutation persists one syncKey outcome on both replicas: a key whose
// counters show any movement changed on both sides (transfers fork the
// source stamp too). Stripe locks are held by the calling sync path.
func logSyncMutation(a, b *Replica, key string, part SyncResult) {
	if part.Transferred+part.Reconciled+part.Merged == 0 {
		return
	}
	a.shardFor(key).noteTombLocked(key)
	b.shardFor(key).noteTombLocked(key)
	a.logKey(key)
	b.logKey(key)
}

func (r *Replica) notePersistErr(err error) {
	r.persistMu.Lock()
	r.persistSeq++
	if r.persistErr == nil {
		r.persistErr = err
	}
	r.persistMu.Unlock()
}

// PersistErr returns the first backend append failure, or nil. In-memory
// state is still correct after a persist error; only durability of the
// writes since then is in doubt.
func (r *Replica) PersistErr() error {
	r.persistMu.Lock()
	defer r.persistMu.Unlock()
	return r.persistErr
}

// Clone forks a full new replica from r: every key's stamp forks, the new
// replica receiving one descendant. This is replica creation under
// partition: no identifiers are requested from anywhere. The clone has the
// same shard count. Each stripe is cloned atomically; concurrent writers
// touching other stripes are not blocked.
func (r *Replica) Clone(label string) *Replica {
	clone := NewReplicaShards(label, len(r.shards))
	for i := range r.shards {
		sh := &r.shards[i]
		sh.lockMut()
		// Forking mutates every key's stamp, so a paged stripe is promoted
		// wholesale: after a Clone the source stripe is fully hot until its
		// next checkpoint.
		if err := r.promoteStripeLocked(i); err != nil {
			r.notePersistErr(err)
		}
		ce := clone.shards[i].epoch.Load()
		for k, v := range sh.data {
			mine, theirs := v.Stamp.Fork()
			v.Stamp = mine
			sh.data[k] = v
			r.logSet(i, k, v)
			cv := v
			cv.Stamp = theirs
			cv.Value = append([]byte(nil), v.Value...)
			clone.shards[i].data[k] = cv
			if cv.Deleted {
				clone.shards[i].tombs[k] = ce
			}
		}
		sh.mu.Unlock()
	}
	r.awaitDurable()
	return clone
}

// Get returns the value of key. Tombstoned and missing keys report ok=false.
//
// The returned slice is immutable by contract and must not be modified: hot
// reads hand out the stored buffer itself and paged reads hand out the page
// cache's buffer, so a Get is zero-copy. Every mutation path installs a
// freshly allocated value, so a buffer obtained here never changes under the
// caller.
func (r *Replica) Get(key string) (value []byte, ok bool) {
	si := ShardIndex(key, len(r.shards))
	sh := &r.shards[si]
	sh.mu.RLock()
	if v, found := sh.data[key]; found {
		sh.mu.RUnlock()
		if v.Deleted {
			return nil, false
		}
		return v.Value, true
	}
	cs := sh.cold
	if cs == nil {
		sh.mu.RUnlock()
		return nil, false
	}
	// Cache probe before the index: a hot key that is already faulted in
	// skips the binary search entirely (see coldValue for why a name hit is
	// always a current live value).
	if buf, hit := r.cache.Lookup(pagecache.Key{Shard: si, Gen: cs.gen, Ckpt: true, Name: key}); hit {
		sh.mu.RUnlock()
		return buf, true
	}
	x := cs.find(key)
	if x < 0 || cs.dropped[x] || cs.deleted[x] {
		sh.mu.RUnlock()
		return nil, false
	}
	buf, err := r.coldValue(si, cs, x, key)
	sh.mu.RUnlock()
	if err != nil {
		r.notePersistErr(fmt.Errorf("kvstore: get %q (shard %d): %w", key, si, err))
		return nil, false
	}
	return buf, true
}

// Put writes a value, recording an update on the key's stamp (seeding the
// stamp on first write at this replica).
func (r *Replica) Put(key string, value []byte) {
	si := ShardIndex(key, len(r.shards))
	sh := &r.shards[si]
	sh.lockMut()
	r.logSet(si, key, r.putLocked(si, key, value))
	sh.mu.Unlock()
	r.awaitDurable()
}

// putLocked applies one write to stripe si. The prior stamp is taken from
// the hot map or, for paged stripes, the cold index — overwriting a paged
// key never faults its old value in. Stripe write lock held.
func (r *Replica) putLocked(si int, key string, value []byte) Versioned {
	sh := &r.shards[si]
	v, found := sh.data[key]
	if !found {
		if cs := sh.cold; cs != nil {
			if x := cs.find(key); x >= 0 && !cs.dropped[x] {
				v, found = Versioned{Deleted: cs.deleted[x], Stamp: cs.stamps[x]}, true
			}
		}
	}
	if !found {
		v = Versioned{Stamp: core.Seed()}
	}
	v.Value = append([]byte(nil), value...)
	v.Deleted = false
	v.Stamp = v.Stamp.Update()
	sh.data[key] = v
	delete(sh.tombs, key)
	return v
}

// PutVersion stores a copy verbatim — value, tombstone flag and stamp —
// without recording an update. It exists for storage adapters that manage
// stamps themselves (e.g. the panasync bridge, which keeps stamps in file
// sidecars); regular writers should use Put.
func (r *Replica) PutVersion(key string, v Versioned) {
	si := ShardIndex(key, len(r.shards))
	sh := &r.shards[si]
	sh.lockMut()
	v.Value = append([]byte(nil), v.Value...)
	sh.data[key] = v
	sh.noteTombLocked(key)
	r.logSet(si, key, v)
	sh.mu.Unlock()
	r.awaitDurable()
}

// Delete tombstones a key. Deleting a key never seen at this replica is a
// no-op returning false.
func (r *Replica) Delete(key string) bool {
	si := ShardIndex(key, len(r.shards))
	sh := &r.shards[si]
	sh.lockMut()
	v, ok := r.deleteLocked(si, key)
	if ok {
		r.logSet(si, key, v)
	}
	sh.mu.Unlock()
	r.awaitDurable()
	return ok
}

// deleteLocked tombstones key in stripe si, recording the delete in the
// tombstone ledger at the current epoch. Like putLocked, the prior stamp may
// come from the cold index without faulting the old value. Stripe write lock
// held (epoch bumped by lockMut).
func (r *Replica) deleteLocked(si int, key string) (Versioned, bool) {
	sh := &r.shards[si]
	v, found := sh.data[key]
	if !found {
		if cs := sh.cold; cs != nil {
			if x := cs.find(key); x >= 0 && !cs.dropped[x] {
				v, found = Versioned{Deleted: cs.deleted[x], Stamp: cs.stamps[x]}, true
			}
		}
	}
	if !found || v.Deleted {
		return Versioned{}, false
	}
	v.Value = nil
	v.Deleted = true
	v.Stamp = v.Stamp.Update()
	sh.data[key] = v
	sh.tombs[key] = sh.epoch.Load()
	return v, true
}

// PutBatch writes every entry, taking each involved shard lock exactly
// once instead of once per key.
func (r *Replica) PutBatch(entries map[string][]byte) {
	if len(entries) == 0 {
		return
	}
	for _, group := range r.groupKeys(keysOf(entries)) {
		sh := &r.shards[group.shard]
		sh.lockMut()
		for _, k := range group.keys {
			r.logSet(group.shard, k, r.putLocked(group.shard, k, entries[k]))
		}
		sh.mu.Unlock()
	}
	r.awaitDurable()
}

// GetBatch returns the live values of the given keys (missing and
// tombstoned keys are absent from the result), taking each involved shard
// lock exactly once. Like Get, the returned buffers are immutable by
// contract — hot reads are zero-copy and paged reads share the page cache's
// buffers.
func (r *Replica) GetBatch(keys []string) map[string][]byte {
	out := make(map[string][]byte, len(keys))
	for _, group := range r.groupKeys(keys) {
		sh := &r.shards[group.shard]
		sh.mu.RLock()
		for _, k := range group.keys {
			if v, found := sh.data[k]; found {
				if !v.Deleted {
					out[k] = v.Value
				}
				continue
			}
			cs := sh.cold
			if cs == nil {
				continue
			}
			x := cs.find(k)
			if x < 0 || cs.dropped[x] || cs.deleted[x] {
				continue
			}
			buf, err := r.coldValue(group.shard, cs, x, k)
			if err != nil {
				r.notePersistErr(fmt.Errorf("kvstore: get %q (shard %d): %w", k, group.shard, err))
				continue
			}
			out[k] = buf
		}
		sh.mu.RUnlock()
	}
	return out
}

// DeleteBatch tombstones every given key, returning how many were live,
// taking each involved shard lock exactly once.
func (r *Replica) DeleteBatch(keys []string) int {
	n := 0
	for _, group := range r.groupKeys(keys) {
		sh := &r.shards[group.shard]
		sh.lockMut()
		for _, k := range group.keys {
			if v, ok := r.deleteLocked(group.shard, k); ok {
				r.logSet(group.shard, k, v)
				n++
			}
		}
		sh.mu.Unlock()
	}
	r.awaitDurable()
	return n
}

// keyGroup is a batch's keys owned by one shard.
type keyGroup struct {
	shard int
	keys  []string
}

// groupKeys partitions keys by owning shard. Group order is irrelevant:
// batch operations hold at most one stripe lock at a time, so they cannot
// deadlock regardless of iteration order.
func (r *Replica) groupKeys(keys []string) []keyGroup {
	n := len(r.shards)
	byShard := make(map[int][]string, n)
	for _, k := range keys {
		i := ShardIndex(k, n)
		byShard[i] = append(byShard[i], k)
	}
	out := make([]keyGroup, 0, len(byShard))
	for i, ks := range byShard {
		out = append(out, keyGroup{shard: i, keys: ks})
	}
	return out
}

func keysOf(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Version returns the stored copy of a key including its stamp and
// tombstone state. Unlike Get, the returned value is the caller's own copy.
func (r *Replica) Version(key string) (Versioned, bool) {
	si := ShardIndex(key, len(r.shards))
	sh := &r.shards[si]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if v, found := sh.data[key]; found {
		v.Value = append([]byte(nil), v.Value...)
		return v, true
	}
	cs := sh.cold
	if cs == nil {
		return Versioned{}, false
	}
	x := cs.find(key)
	if x < 0 || cs.dropped[x] {
		return Versioned{}, false
	}
	v := Versioned{Deleted: cs.deleted[x], Stamp: cs.stamps[x]}
	if !v.Deleted {
		buf, err := r.coldValue(si, cs, x, key)
		if err != nil {
			r.notePersistErr(fmt.Errorf("kvstore: version %q (shard %d): %w", key, si, err))
			return Versioned{}, false
		}
		v.Value = append([]byte(nil), buf...)
	}
	return v, true
}

// Keys returns all keys with stored state (including tombstones), sorted.
func (r *Replica) Keys() []string {
	var out []string
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		sh.eachMetaLocked(func(k string, _ bool, _ core.Stamp) {
			out = append(out, k)
		})
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live (non-tombstoned) keys.
func (r *Replica) Len() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		sh.eachMetaLocked(func(_ string, deleted bool, _ core.Stamp) {
			if !deleted {
				n++
			}
		})
		sh.mu.RUnlock()
	}
	return n
}

// SyncResult reports the outcome of one Sync.
type SyncResult struct {
	// Transferred counts keys copied to a replica that lacked them.
	Transferred int
	// Reconciled counts keys where one side dominated.
	Reconciled int
	// Merged counts conflicting keys merged by the resolver.
	Merged int
	// Pruned counts keys whose stamps proved the copies equivalent, so no
	// data moved. Only delta rounds prune; full syncs report zero.
	Pruned int `json:"Pruned,omitempty"`
	// StripesSkipped counts stripes whose summary hashes matched in a
	// hierarchical (v3) round, so not even their digests traveled. Keys in
	// skipped stripes are not counted in Pruned — the whole point is that
	// nobody enumerated them.
	StripesSkipped int `json:"StripesSkipped,omitempty"`
	// BytesSent and BytesReceived count wire payload bytes from the
	// initiator's perspective. In-process syncs report zero; the network
	// anti-entropy layer fills them in.
	BytesSent     int64 `json:"BytesSent,omitempty"`
	BytesReceived int64 `json:"BytesReceived,omitempty"`
	// TombstonesLive counts keys that remained tombstones after convergence
	// — the deletes still waiting on the tombstone GC. Informational, like
	// Pruned; only full in-process sync paths count it.
	TombstonesLive int `json:"TombstonesLive,omitempty"`
	// Conflicts lists conflicting keys left untouched (nil resolver),
	// sorted.
	Conflicts []string
}

// add accumulates another partial result.
func (r *SyncResult) add(o SyncResult) {
	r.Transferred += o.Transferred
	r.Reconciled += o.Reconciled
	r.Merged += o.Merged
	r.Pruned += o.Pruned
	r.StripesSkipped += o.StripesSkipped
	r.BytesSent += o.BytesSent
	r.BytesReceived += o.BytesReceived
	r.TombstonesLive += o.TombstonesLive
	r.Conflicts = append(r.Conflicts, o.Conflicts...)
}

// Add accumulates another result into r — the aggregation network layers use
// when a logical round is split into per-stripe rounds. Conflicts are
// concatenated unsorted; callers sort once at the end.
func (r *SyncResult) Add(o SyncResult) { r.add(o) }

// replicaBefore orders two distinct replicas for deadlock-free lock
// acquisition, as the seed did for its single pair of locks.
func replicaBefore(a, b *Replica) bool {
	return fmt.Sprintf("%p", a) < fmt.Sprintf("%p", b)
}

// Sync performs pairwise anti-entropy between two replicas: every key known
// to either side converges on both, except conflicting keys when resolve is
// nil, which are reported in SyncResult.Conflicts and left for a later sync
// with a resolver.
//
// When both replicas have the same shard count, shard pairs are
// reconciled concurrently (one worker per stripe, capped at GOMAXPROCS):
// the keyspace is never serialized under a single lock, and only the two
// stripes under reconciliation are blocked at any moment. Replicas with
// different stripe counts fall back to a whole-keyspace pass under all
// locks. Either way locks are taken in a global order (replica address,
// then stripe index), so concurrent syncs of overlapping pairs cannot
// deadlock.
func Sync(a, b *Replica, resolve Resolver) (SyncResult, error) {
	if a == b {
		return SyncResult{}, fmt.Errorf("kvstore: sync of a replica with itself")
	}
	var res SyncResult
	var err error
	if len(a.shards) == len(b.shards) {
		res, err = syncStriped(a, b, resolve)
	} else {
		res, err = syncGlobal(a, b, resolve)
	}
	a.awaitDurable()
	b.awaitDurable()
	sort.Strings(res.Conflicts)
	return res, err
}

// syncStriped reconciles same-layout replicas stripe pair by stripe pair,
// concurrently.
func syncStriped(a, b *Replica, resolve Resolver) (SyncResult, error) {
	nShards := len(a.shards)
	workers := runtime.GOMAXPROCS(0)
	if workers > nShards {
		workers = nShards
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		mu       sync.Mutex
		res      SyncResult
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= nShards || failed.Load() {
					return
				}
				sa, sb := &a.shards[i], &b.shards[i]
				first, second := sa, sb
				if !replicaBefore(a, b) {
					first, second = sb, sa
				}
				first.lockMut()
				second.lockMut()
				part, err := syncStripePair(a, b, i, resolve)
				second.mu.Unlock()
				first.mu.Unlock()
				mu.Lock()
				res.add(part)
				if err != nil && firstErr == nil {
					firstErr = err
					failed.Store(true)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return res, firstErr
}

// syncGlobal reconciles replicas with different stripe counts under all
// locks of both, taken in global order.
func syncGlobal(a, b *Replica, resolve Resolver) (SyncResult, error) {
	first, second := a, b
	if !replicaBefore(a, b) {
		first, second = b, a
	}
	for i := range first.shards {
		first.shards[i].lockMut()
		defer first.shards[i].mu.Unlock()
	}
	for i := range second.shards {
		second.shards[i].lockMut()
		defer second.shards[i].mu.Unlock()
	}
	var res SyncResult
	keys := map[string]struct{}{}
	for _, r := range []*Replica{a, b} {
		for i := range r.shards {
			r.shards[i].eachMetaLocked(func(k string, _ bool, _ core.Stamp) {
				keys[k] = struct{}{}
			})
		}
	}
	for _, k := range sortedKeys(keys) {
		part, err := syncKeyPromoted(a, b, k, resolve)
		res.add(part)
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

// SyncShard reconciles only the keys belonging to stripe idx of a
// layout with `of` stripes — the unit of per-shard network anti-entropy:
// two endpoints agreeing on (idx, of) can run `of` independent scoped
// syncs concurrently and converge exactly as one whole-keyspace Sync
// would. When a replica's own layout matches `of`, only its stripe idx is
// locked; otherwise all its stripes are (the matching keys may live
// anywhere).
func SyncShard(a, b *Replica, resolve Resolver, idx, of int) (SyncResult, error) {
	res, err := syncShard(a, b, resolve, idx, of)
	a.awaitDurable()
	b.awaitDurable()
	return res, err
}

func syncShard(a, b *Replica, resolve Resolver, idx, of int) (SyncResult, error) {
	if a == b {
		return SyncResult{}, fmt.Errorf("kvstore: sync of a replica with itself")
	}
	if of < 1 || idx < 0 || idx >= of {
		return SyncResult{}, fmt.Errorf("kvstore: shard %d out of range of %d", idx, of)
	}
	first, second := a, b
	if !replicaBefore(a, b) {
		first, second = b, a
	}
	for _, r := range []*Replica{first, second} {
		if len(r.shards) == of {
			r.shards[idx].lockMut()
			defer r.shards[idx].mu.Unlock()
			continue
		}
		for i := range r.shards {
			r.shards[i].lockMut()
			defer r.shards[i].mu.Unlock()
		}
	}
	var res SyncResult
	keys := map[string]struct{}{}
	for _, r := range []*Replica{a, b} {
		for i := range r.shards {
			if len(r.shards) == of && i != idx {
				continue
			}
			r.shards[i].eachMetaLocked(func(k string, _ bool, _ core.Stamp) {
				if ShardIndex(k, of) == idx {
					keys[k] = struct{}{}
				}
			})
		}
	}
	var err error
	for _, k := range sortedKeys(keys) {
		var part SyncResult
		part, err = syncKeyPromoted(a, b, k, resolve)
		res.add(part)
		if err != nil {
			break
		}
	}
	sort.Strings(res.Conflicts)
	return res, err
}

func sortedKeys(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// syncStripePair reconciles the union of stripe i of two same-layout
// replicas. Both stripes' write locks must be held.
func syncStripePair(a, b *Replica, i int, resolve Resolver) (SyncResult, error) {
	sa, sb := &a.shards[i], &b.shards[i]
	keys := make(map[string]struct{}, sa.countLocked()+sb.countLocked())
	collect := func(k string, _ bool, _ core.Stamp) { keys[k] = struct{}{} }
	sa.eachMetaLocked(collect)
	sb.eachMetaLocked(collect)
	var res SyncResult
	for _, k := range sortedKeys(keys) {
		part, err := syncKeyPromoted(a, b, k, resolve)
		res.add(part)
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

// syncKeyPromoted converges one key between two replicas whose relevant
// stripe write locks are held: the shared front door of every in-process
// sync path. Copies whose metadata already proves them equivalent are left
// alone without faulting any paged value; otherwise both sides promote the
// key into their hot maps (faulting cold values in) and the raw-map syncKey
// runs as it always has.
func syncKeyPromoted(a, b *Replica, key string, resolve Resolver) (SyncResult, error) {
	sia, sib := ShardIndex(key, len(a.shards)), ShardIndex(key, len(b.shards))
	sa, sb := &a.shards[sia], &b.shards[sib]
	va, okA := sa.metaLocked(key)
	vb, okB := sb.metaLocked(key)
	if !okA && !okB {
		return SyncResult{}, nil
	}
	// Converged fast path: both copies exist, their ids are disjoint (a
	// genuine forked pair — overlapping ids mean independent origins, which
	// need the full reconcile below) and the stamps are causally equal.
	// reconcileKey would return outcomeNoop without touching either value,
	// so neither side needs its value promoted out of the cold index.
	if okA && okB && va.Deleted == vb.Deleted &&
		va.Stamp.IDName().IncomparableTo(vb.Stamp.IDName()) &&
		core.Compare(va.Stamp, vb.Stamp) == core.Equal {
		var res SyncResult
		if va.Deleted {
			res.TombstonesLive++
		}
		return res, nil
	}
	if err := a.promoteLocked(sia, key); err != nil {
		return SyncResult{}, err
	}
	if err := b.promoteLocked(sib, key); err != nil {
		return SyncResult{}, err
	}
	res, err := syncKey(key, sa.data, sb.data, resolve)
	logSyncMutation(a, b, key, res)
	return res, err
}

// syncKey converges one key across two raw shard maps (locks held). The
// first map is always the logical "a" side, so resolver argument order is
// independent of lock order.
func syncKey(k string, da, db map[string]Versioned, resolve Resolver) (SyncResult, error) {
	var res SyncResult
	va, hasA := da[k]
	vb, hasB := db[k]
	switch {
	case !hasA && !hasB:
		// Neither side holds the key (a caller named it explicitly, e.g. a
		// quorum write propagating a delete of a never-written key): nothing
		// to converge. Falling through would install zero-stamp entries on
		// both sides — copies no real write could ever dominate.
	case hasA && !hasB:
		mine, theirs := va.Stamp.Fork()
		va.Stamp = mine
		da[k] = va
		db[k] = Versioned{
			Value:   append([]byte(nil), va.Value...),
			Deleted: va.Deleted,
			Stamp:   theirs,
		}
		res.Transferred++
	case hasB && !hasA:
		mine, theirs := vb.Stamp.Fork()
		vb.Stamp = mine
		db[k] = vb
		da[k] = Versioned{
			Value:   append([]byte(nil), vb.Value...),
			Deleted: vb.Deleted,
			Stamp:   theirs,
		}
		res.Transferred++
	default:
		outcome, err := reconcileKey(k, &va, &vb, resolve)
		if err != nil {
			return res, err
		}
		switch outcome {
		case outcomeConflictSkipped:
			res.Conflicts = append(res.Conflicts, k)
			return res, nil
		case outcomeReconciled:
			res.Reconciled++
		case outcomeMerged:
			res.Merged++
		case outcomeNoop:
		}
		da[k] = va
		db[k] = vb
	}
	if v, ok := da[k]; ok && v.Deleted {
		res.TombstonesLive++
	}
	return res, nil
}

type reconcileOutcome int

const (
	outcomeNoop reconcileOutcome = iota + 1
	outcomeReconciled
	outcomeMerged
	outcomeConflictSkipped
)

// reconcileKey merges two existing copies in place.
func reconcileKey(key string, va, vb *Versioned, resolve Resolver) (reconcileOutcome, error) {
	if !va.Stamp.IDName().IncomparableTo(vb.Stamp.IDName()) {
		// Overlapping ids mean the copies do NOT descend from a common seed:
		// the key was created independently at two replicas. Version stamps
		// order only elements of one fork-join system (Invariant I2
		// guarantees same-frontier ids never overlap), so no causal order
		// exists between these copies. Treat them as conflicting and restart
		// the key's stamp system from a fresh seed after merging.
		return reconcileIndependent(key, va, vb, resolve)
	}
	rel := core.Compare(va.Stamp, vb.Stamp)
	outcome := outcomeNoop

	var value []byte
	var deleted bool
	switch rel {
	case core.Equal:
		// Already equivalent: leave both stamps untouched. Joining and
		// re-forking here would be correct but would grow the merged id on
		// every idle sync — the known growth weakness of version stamps
		// under rotating sync partners (addressed by the ITC successor
		// design); skipping idle churn keeps ids proportional to actual
		// data flow.
		return outcomeNoop, nil
	case core.Before:
		// vb's version is strictly newer: va becomes a copy of it. The
		// winner forks its stamp and hands the loser one half — the same
		// detached-copy move as ForkCopy — rather than joining both stamps
		// and re-forking. Join-and-refork looks tidier (it collects the
		// loser's id for reduction) but under rotating sync partners (a
		// quorum write pushing to R-1 followers in turn) the interleaved
		// forks leave ids no reduction can collapse, compounding ~3x per
		// write — the paper's growth weakness in its worst shape. Forking
		// the winner abandons the loser's id instead: sound, because the
		// winner's history strictly contains the loser's, so the forked
		// half dominates everything the abandoned stamp proved; and linear,
		// one fork per actual data transfer.
		keep, give := vb.Stamp.Fork()
		vb.Stamp = keep
		*va = Versioned{Value: append([]byte(nil), vb.Value...), Deleted: vb.Deleted, Stamp: give}
		return outcomeReconciled, nil
	case core.After:
		keep, give := va.Stamp.Fork()
		va.Stamp = keep
		*vb = Versioned{Value: append([]byte(nil), va.Value...), Deleted: va.Deleted, Stamp: give}
		return outcomeReconciled, nil
	case core.Concurrent:
		if resolve == nil {
			return outcomeConflictSkipped, nil
		}
		var err error
		value, deleted, err = resolve(key, *va, *vb)
		if err != nil {
			return 0, fmt.Errorf("kvstore: resolve %q: %w", key, err)
		}
		outcome = outcomeMerged
	}

	// Concurrent merge: the join is semantically required (the merged copy
	// must dominate both inputs), and the resolver's verdict is a new
	// update on the joined stamp.
	joined, err := core.Join(va.Stamp, vb.Stamp)
	if err != nil {
		return 0, fmt.Errorf("kvstore: join stamps for %q: %w", key, err)
	}
	joined = joined.Update()
	sa, sb := joined.Fork()
	*va = Versioned{Value: append([]byte(nil), value...), Deleted: deleted, Stamp: sa}
	*vb = Versioned{Value: append([]byte(nil), value...), Deleted: deleted, Stamp: sb}
	return outcome, nil
}

// reconcileIndependent merges two copies with no common seed. Identical
// contents merge silently; different contents need the resolver. Either way
// the key's stamp system restarts from a fresh seed, updated so the merged
// copy dominates any future copy forked from it.
//
// CONTRACT: restarting the stamp system is sound only while these two
// replicas hold the key's only copies. If a third replica also created the
// key independently, its copy can later compare as causally related to the
// reseeded stamps while holding unrelated data — without globally unique
// identifiers there is no way to causally order copies that share no common
// ancestor (this is inherent to identifier-free operation, not a bug of
// this implementation). Deployments should originate each key at one
// replica and propagate it by Sync/Clone, as the fork-join model assumes;
// see the package comment.
func reconcileIndependent(key string, va, vb *Versioned, resolve Resolver) (reconcileOutcome, error) {
	var (
		value   []byte
		deleted bool
		outcome reconcileOutcome
	)
	if va.Deleted == vb.Deleted && bytes.Equal(va.Value, vb.Value) {
		value, deleted = va.Value, va.Deleted
		outcome = outcomeReconciled
	} else {
		if resolve == nil {
			return outcomeConflictSkipped, nil
		}
		var err error
		value, deleted, err = resolve(key, *va, *vb)
		if err != nil {
			return 0, fmt.Errorf("kvstore: resolve %q: %w", key, err)
		}
		outcome = outcomeMerged
	}
	sa, sb := core.Seed().Update().Fork()
	*va = Versioned{Value: append([]byte(nil), value...), Deleted: deleted, Stamp: sa}
	*vb = Versioned{Value: append([]byte(nil), value...), Deleted: deleted, Stamp: sb}
	return outcome, nil
}

// snapshotEntry is the JSON form of one key's state.
type snapshotEntry struct {
	Key     string `json:"key"`
	Value   []byte `json:"value,omitempty"`
	Deleted bool   `json:"deleted,omitempty"`
	Stamp   string `json:"stamp"`
}

// snapshotDoc is the JSON form of a replica (or one of its stripes).
type snapshotDoc struct {
	Label string `json:"label"`
	// Shards records the stripe count so Restore reproduces the layout.
	// Absent (zero) in snapshots from before sharding: DefaultShards.
	Shards  int             `json:"shards,omitempty"`
	Entries []snapshotEntry `json:"entries"`
}

// Snapshot serializes the replica (label, shard layout and all entries
// including tombstones) for durable storage; Restore loads it back.
// Together they support crash/restart testing. Each stripe is read
// atomically; the snapshot is a per-key-consistent view.
func (r *Replica) Snapshot() ([]byte, error) {
	entries, err := r.collectEntries(-1)
	if err != nil {
		return nil, err
	}
	return json.Marshal(snapshotDoc{Label: r.label, Shards: len(r.shards), Entries: entries})
}

// SnapshotShard serializes only stripe idx — the payload of one per-shard
// anti-entropy round.
func (r *Replica) SnapshotShard(idx int) ([]byte, error) {
	if idx < 0 || idx >= len(r.shards) {
		return nil, fmt.Errorf("kvstore: shard %d out of range of %d", idx, len(r.shards))
	}
	entries, err := r.collectEntries(idx)
	if err != nil {
		return nil, err
	}
	return json.Marshal(snapshotDoc{Label: r.label, Shards: len(r.shards), Entries: entries})
}

// collectEntries gathers sorted entries from stripe idx, or from all
// stripes when idx is negative. Paged stripes fault their cold values in
// (through the cache, without promoting them) — a snapshot is a full copy
// by definition.
func (r *Replica) collectEntries(idx int) ([]snapshotEntry, error) {
	var entries []snapshotEntry
	for i := range r.shards {
		if idx >= 0 && i != idx {
			continue
		}
		sh := &r.shards[i]
		sh.mu.RLock()
		for k, v := range sh.data {
			entries = append(entries, snapshotEntry{
				Key: k, Value: v.Value, Deleted: v.Deleted, Stamp: v.Stamp.String(),
			})
		}
		if cs := sh.cold; cs != nil {
			for x := 0; x < cs.count(); x++ {
				if cs.dropped[x] {
					continue
				}
				k := cs.key(x)
				if _, shadowed := sh.data[k]; shadowed {
					continue
				}
				e := snapshotEntry{Key: k, Deleted: cs.deleted[x], Stamp: cs.stamps[x].String()}
				if !e.Deleted {
					buf, err := r.coldValue(i, cs, x, k)
					if err != nil {
						sh.mu.RUnlock()
						return nil, fmt.Errorf("kvstore: snapshot shard %d: %w", i, err)
					}
					e.Value = buf
				}
				entries = append(entries, e)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].Key < entries[b].Key })
	return entries, nil
}

// Adopt replaces this replica's entire contents with the snapshot's,
// keeping the replica pointer, label and shard layout stable. It is used
// by the anti-entropy client to take over the merged state returned by a
// peer.
func (r *Replica) Adopt(snapshot []byte) error {
	restored, err := Restore(snapshot)
	if err != nil {
		return err
	}
	for i := range r.shards {
		r.shards[i].lockMut()
		defer r.shards[i].mu.Unlock()
	}
	for i := range r.shards {
		r.shards[i].data = make(map[string]Versioned)
		r.shards[i].cold = nil // wholesale replacement: the old checkpoint index dies
	}
	for i := range restored.shards {
		for k, v := range restored.shards[i].data {
			r.shardFor(k).data[k] = v
		}
	}
	for i := range r.shards {
		r.shards[i].rebuildTombsLocked()
		if r.cache != nil {
			r.cache.InvalidateShard(i)
		}
		r.logAdopt(i)
	}
	return nil
}

// AdoptShard replaces only stripe idx with the snapshot's entries — the
// client half of one per-shard anti-entropy round.
//
// Adoption is wholesale: keys of stripe idx absent from the snapshot are
// dropped. That is only sound when the snapshot was produced under this
// replica's own stripe layout — a snapshot of "stripe idx" from a peer with
// a different stripe count covers a different slice of the keyspace, and
// adopting it would silently discard the rest of the local stripe. A
// snapshot recording a disagreeing layout is therefore rejected outright;
// snapshots predating layout recording fall back to the per-key check,
// which still keeps foreign keys out of the stripe.
func (r *Replica) AdoptShard(idx int, snapshot []byte) error {
	if idx < 0 || idx >= len(r.shards) {
		return fmt.Errorf("kvstore: shard %d out of range of %d", idx, len(r.shards))
	}
	if rec, err := snapshotLayout(snapshot); err == nil && rec > 0 && rec != len(r.shards) {
		return fmt.Errorf("kvstore: adopt shard %d: snapshot records a %d-stripe layout, replica has %d",
			idx, rec, len(r.shards))
	}
	restored, err := Restore(snapshot)
	if err != nil {
		return err
	}
	data := make(map[string]Versioned)
	for i := range restored.shards {
		for k, v := range restored.shards[i].data {
			if ShardIndex(k, len(r.shards)) != idx {
				return fmt.Errorf("kvstore: adopt shard %d: key %q belongs to shard %d",
					idx, k, ShardIndex(k, len(r.shards)))
			}
			data[k] = v
		}
	}
	sh := &r.shards[idx]
	sh.lockMut()
	defer sh.mu.Unlock()
	sh.data = data
	sh.cold = nil
	sh.rebuildTombsLocked()
	if r.cache != nil {
		r.cache.InvalidateShard(idx)
	}
	r.logAdopt(idx)
	return nil
}

// Restore deserializes a snapshot — JSON or binary, sniffed from the first
// byte — into a fresh replica with the stripe layout recorded in the
// snapshot.
func Restore(data []byte) (*Replica, error) {
	if len(data) > 0 && data[0] == binarySnapshotVersion {
		return restoreBinary(data)
	}
	var snap snapshotDoc
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("kvstore: restore: %w", err)
	}
	if snap.Shards > maxSnapshotShards {
		// Unchecked, a corrupt or hostile shard count would eagerly allocate
		// that many stripes (found by FuzzRestore).
		return nil, fmt.Errorf("kvstore: restore: %d-stripe layout exceeds limit", snap.Shards)
	}
	shards := snap.Shards
	if shards < 1 {
		shards = DefaultShards
	}
	r := NewReplicaShards(snap.Label, shards)
	for _, e := range snap.Entries {
		st, err := core.Parse(e.Stamp)
		if err != nil {
			return nil, fmt.Errorf("kvstore: restore %q: %w", e.Key, err)
		}
		sh := r.shardFor(e.Key)
		sh.data[e.Key] = Versioned{Value: e.Value, Deleted: e.Deleted, Stamp: st}
		if e.Deleted {
			sh.tombs[e.Key] = 0
		}
	}
	return r, nil
}

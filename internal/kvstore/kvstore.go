// Package kvstore implements an optimistically replicated key-value store
// that uses version stamps for per-key causality tracking — the kind of
// system the paper's introduction motivates: replicas synchronize pairwise
// whenever connectivity allows, updates happen anywhere anytime, and new
// replicas appear under partition with no identifier coordination.
//
// Every stored copy of a key is one element of that key's fork-join
// frontier: the first write seeds a stamp, local writes update it,
// transferring a key to another replica forks it, and synchronization joins
// and re-forks. Comparing two replicas' stamps for a key classifies the
// copies as equivalent, obsolete or conflicting, exactly as Section 2 of
// the paper prescribes; deletions are tombstones so removal also propagates
// causally.
//
// Causal ordering is defined only among copies descending from one seed:
// originate each key at a single replica and let Sync/Clone propagate it.
// Keys created independently at two replicas share no causal ancestor;
// Sync detects this (their stamp ids overlap, which Invariant I2 rules out
// within one system), reconciles by value and restarts the key's stamp
// system — sound for a two-replica deployment, best-effort beyond that
// (see reconcileIndependent).
package kvstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"versionstamp/internal/core"
)

// Versioned is one replica's copy of a key: the value, a deletion marker,
// and the version stamp tracking the copy's causal history.
type Versioned struct {
	// Value is the stored bytes (nil for tombstones).
	Value []byte
	// Deleted marks a tombstone: the key was deleted at or after the
	// updates recorded in Stamp.
	Deleted bool
	// Stamp is this copy's version stamp within the key's frontier.
	Stamp core.Stamp
}

// Resolver merges two conflicting copies of a key during Sync, returning
// the merged value (merged deletions are expressed by returning
// deleted=true).
type Resolver func(key string, a, b Versioned) (value []byte, deleted bool, err error)

// KeepBoth is a Resolver that concatenates both values with a separator —
// a simple deterministic merge for demonstration and tests. Deletion loses
// against a concurrent write.
func KeepBoth(sep []byte) Resolver {
	return func(_ string, a, b Versioned) ([]byte, bool, error) {
		switch {
		case a.Deleted && b.Deleted:
			return nil, true, nil
		case a.Deleted:
			return b.Value, false, nil
		case b.Deleted:
			return a.Value, false, nil
		default:
			merged := make([]byte, 0, len(a.Value)+len(sep)+len(b.Value))
			merged = append(merged, a.Value...)
			merged = append(merged, sep...)
			merged = append(merged, b.Value...)
			return merged, false, nil
		}
	}
}

// Replica is one store replica. The label is purely cosmetic — replicas
// have no identity beyond their stamps, which is the point of the paper.
// Replica is safe for concurrent use.
type Replica struct {
	mu    sync.RWMutex
	label string
	data  map[string]Versioned
}

// NewReplica creates an empty replica with a cosmetic label.
func NewReplica(label string) *Replica {
	return &Replica{label: label, data: make(map[string]Versioned)}
}

// Label returns the cosmetic label.
func (r *Replica) Label() string { return r.label }

// Clone forks a full new replica from r: every key's stamp forks, the new
// replica receiving one descendant. This is replica creation under
// partition: no identifiers are requested from anywhere.
func (r *Replica) Clone(label string) *Replica {
	r.mu.Lock()
	defer r.mu.Unlock()
	clone := NewReplica(label)
	for k, v := range r.data {
		mine, theirs := v.Stamp.Fork()
		v.Stamp = mine
		r.data[k] = v
		cv := v
		cv.Stamp = theirs
		cv.Value = append([]byte(nil), v.Value...)
		clone.data[k] = cv
	}
	return clone
}

// Get returns the value of key. Tombstoned and missing keys report ok=false.
func (r *Replica) Get(key string) (value []byte, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, found := r.data[key]
	if !found || v.Deleted {
		return nil, false
	}
	return append([]byte(nil), v.Value...), true
}

// Put writes a value, recording an update on the key's stamp (seeding the
// stamp on first write at this replica).
func (r *Replica) Put(key string, value []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, found := r.data[key]
	if !found {
		v = Versioned{Stamp: core.Seed()}
	}
	v.Value = append([]byte(nil), value...)
	v.Deleted = false
	v.Stamp = v.Stamp.Update()
	r.data[key] = v
}

// Delete tombstones a key. Deleting a key never seen at this replica is a
// no-op returning false.
func (r *Replica) Delete(key string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, found := r.data[key]
	if !found || v.Deleted {
		return false
	}
	v.Value = nil
	v.Deleted = true
	v.Stamp = v.Stamp.Update()
	r.data[key] = v
	return true
}

// Version returns the stored copy of a key including its stamp and
// tombstone state.
func (r *Replica) Version(key string) (Versioned, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, found := r.data[key]
	if !found {
		return Versioned{}, false
	}
	v.Value = append([]byte(nil), v.Value...)
	return v, true
}

// Keys returns all keys with stored state (including tombstones), sorted.
func (r *Replica) Keys() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.data))
	for k := range r.data {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live (non-tombstoned) keys.
func (r *Replica) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, v := range r.data {
		if !v.Deleted {
			n++
		}
	}
	return n
}

// SyncResult reports the outcome of one Sync.
type SyncResult struct {
	// Transferred counts keys copied to a replica that lacked them.
	Transferred int
	// Reconciled counts keys where one side dominated.
	Reconciled int
	// Merged counts conflicting keys merged by the resolver.
	Merged int
	// Conflicts lists conflicting keys left untouched (nil resolver).
	Conflicts []string
}

// Sync performs pairwise anti-entropy between two replicas: every key known
// to either side converges on both, except conflicting keys when resolve is
// nil, which are reported in SyncResult.Conflicts and left for a later sync
// with a resolver. Sync locks both replicas in address order, so concurrent
// syncs of overlapping pairs cannot deadlock.
func Sync(a, b *Replica, resolve Resolver) (SyncResult, error) {
	if a == b {
		return SyncResult{}, fmt.Errorf("kvstore: sync of a replica with itself")
	}
	first, second := a, b
	if fmt.Sprintf("%p", a) > fmt.Sprintf("%p", b) {
		first, second = b, a
	}
	first.mu.Lock()
	defer first.mu.Unlock()
	second.mu.Lock()
	defer second.mu.Unlock()

	var res SyncResult
	keys := make(map[string]struct{}, len(a.data)+len(b.data))
	for k := range a.data {
		keys[k] = struct{}{}
	}
	for k := range b.data {
		keys[k] = struct{}{}
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	for _, k := range sorted {
		va, hasA := a.data[k]
		vb, hasB := b.data[k]
		switch {
		case hasA && !hasB:
			mine, theirs := va.Stamp.Fork()
			va.Stamp = mine
			a.data[k] = va
			b.data[k] = Versioned{
				Value:   append([]byte(nil), va.Value...),
				Deleted: va.Deleted,
				Stamp:   theirs,
			}
			res.Transferred++
		case hasB && !hasA:
			mine, theirs := vb.Stamp.Fork()
			vb.Stamp = mine
			b.data[k] = vb
			a.data[k] = Versioned{
				Value:   append([]byte(nil), vb.Value...),
				Deleted: vb.Deleted,
				Stamp:   theirs,
			}
			res.Transferred++
		default:
			outcome, err := reconcileKey(k, &va, &vb, resolve)
			if err != nil {
				return res, err
			}
			switch outcome {
			case outcomeConflictSkipped:
				res.Conflicts = append(res.Conflicts, k)
				continue
			case outcomeReconciled:
				res.Reconciled++
			case outcomeMerged:
				res.Merged++
			case outcomeNoop:
			}
			a.data[k] = va
			b.data[k] = vb
		}
	}
	return res, nil
}

type reconcileOutcome int

const (
	outcomeNoop reconcileOutcome = iota + 1
	outcomeReconciled
	outcomeMerged
	outcomeConflictSkipped
)

// reconcileKey merges two existing copies in place.
func reconcileKey(key string, va, vb *Versioned, resolve Resolver) (reconcileOutcome, error) {
	if !va.Stamp.IDName().IncomparableTo(vb.Stamp.IDName()) {
		// Overlapping ids mean the copies do NOT descend from a common seed:
		// the key was created independently at two replicas. Version stamps
		// order only elements of one fork-join system (Invariant I2
		// guarantees same-frontier ids never overlap), so no causal order
		// exists between these copies. Treat them as conflicting and restart
		// the key's stamp system from a fresh seed after merging.
		return reconcileIndependent(key, va, vb, resolve)
	}
	rel := core.Compare(va.Stamp, vb.Stamp)
	outcome := outcomeNoop

	var value []byte
	var deleted bool
	switch rel {
	case core.Equal:
		// Already equivalent: leave both stamps untouched. Joining and
		// re-forking here would be correct but would grow the merged id on
		// every idle sync — the known growth weakness of version stamps
		// under rotating sync partners (addressed by the ITC successor
		// design); skipping idle churn keeps ids proportional to actual
		// data flow.
		return outcomeNoop, nil
	case core.Before:
		value, deleted = vb.Value, vb.Deleted
		outcome = outcomeReconciled
	case core.After:
		value, deleted = va.Value, va.Deleted
		outcome = outcomeReconciled
	case core.Concurrent:
		if resolve == nil {
			return outcomeConflictSkipped, nil
		}
		var err error
		value, deleted, err = resolve(key, *va, *vb)
		if err != nil {
			return 0, fmt.Errorf("kvstore: resolve %q: %w", key, err)
		}
		outcome = outcomeMerged
	}

	joined, err := core.Join(va.Stamp, vb.Stamp)
	if err != nil {
		return 0, fmt.Errorf("kvstore: join stamps for %q: %w", key, err)
	}
	if outcome == outcomeMerged {
		// The merge is a new update dominating both inputs.
		joined = joined.Update()
	}
	sa, sb := joined.Fork()
	*va = Versioned{Value: append([]byte(nil), value...), Deleted: deleted, Stamp: sa}
	*vb = Versioned{Value: append([]byte(nil), value...), Deleted: deleted, Stamp: sb}
	return outcome, nil
}

// reconcileIndependent merges two copies with no common seed. Identical
// contents merge silently; different contents need the resolver. Either way
// the key's stamp system restarts from a fresh seed, updated so the merged
// copy dominates any future copy forked from it.
//
// CONTRACT: restarting the stamp system is sound only while these two
// replicas hold the key's only copies. If a third replica also created the
// key independently, its copy can later compare as causally related to the
// reseeded stamps while holding unrelated data — without globally unique
// identifiers there is no way to causally order copies that share no common
// ancestor (this is inherent to identifier-free operation, not a bug of
// this implementation). Deployments should originate each key at one
// replica and propagate it by Sync/Clone, as the fork-join model assumes;
// see the package comment.
func reconcileIndependent(key string, va, vb *Versioned, resolve Resolver) (reconcileOutcome, error) {
	var (
		value   []byte
		deleted bool
		outcome reconcileOutcome
	)
	if va.Deleted == vb.Deleted && bytes.Equal(va.Value, vb.Value) {
		value, deleted = va.Value, va.Deleted
		outcome = outcomeReconciled
	} else {
		if resolve == nil {
			return outcomeConflictSkipped, nil
		}
		var err error
		value, deleted, err = resolve(key, *va, *vb)
		if err != nil {
			return 0, fmt.Errorf("kvstore: resolve %q: %w", key, err)
		}
		outcome = outcomeMerged
	}
	sa, sb := core.Seed().Update().Fork()
	*va = Versioned{Value: append([]byte(nil), value...), Deleted: deleted, Stamp: sa}
	*vb = Versioned{Value: append([]byte(nil), value...), Deleted: deleted, Stamp: sb}
	return outcome, nil
}

// snapshotEntry is the JSON form of one key's state.
type snapshotEntry struct {
	Key     string `json:"key"`
	Value   []byte `json:"value,omitempty"`
	Deleted bool   `json:"deleted,omitempty"`
	Stamp   string `json:"stamp"`
}

// Snapshot serializes the replica (label and all entries including
// tombstones) for durable storage; Restore loads it back. Together they
// support crash/restart testing.
func (r *Replica) Snapshot() ([]byte, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	entries := make([]snapshotEntry, 0, len(r.data))
	for _, k := range r.keysLocked() {
		v := r.data[k]
		entries = append(entries, snapshotEntry{
			Key: k, Value: v.Value, Deleted: v.Deleted, Stamp: v.Stamp.String(),
		})
	}
	return json.Marshal(struct {
		Label   string          `json:"label"`
		Entries []snapshotEntry `json:"entries"`
	}{Label: r.label, Entries: entries})
}

func (r *Replica) keysLocked() []string {
	out := make([]string, 0, len(r.data))
	for k := range r.data {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Adopt replaces this replica's entire contents with the snapshot's,
// keeping the replica pointer (and label) stable. It is used by the
// anti-entropy client to take over the merged state returned by a peer.
func (r *Replica) Adopt(snapshot []byte) error {
	restored, err := Restore(snapshot)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.data = restored.data
	return nil
}

// Restore deserializes a snapshot into a fresh replica.
func Restore(data []byte) (*Replica, error) {
	var snap struct {
		Label   string          `json:"label"`
		Entries []snapshotEntry `json:"entries"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("kvstore: restore: %w", err)
	}
	r := NewReplica(snap.Label)
	for _, e := range snap.Entries {
		st, err := core.Parse(e.Stamp)
		if err != nil {
			return nil, fmt.Errorf("kvstore: restore %q: %w", e.Key, err)
		}
		r.data[e.Key] = Versioned{Value: e.Value, Deleted: e.Deleted, Stamp: st}
	}
	return r, nil
}

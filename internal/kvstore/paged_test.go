package kvstore

import (
	"bytes"
	"fmt"
	"testing"
)

// pagedOpts opens a paged, group-committed durable replica — the
// memory-bounded configuration the paging machinery exists for.
func pagedOpts(shards int) Options {
	return Options{Label: "paged", Shards: shards, GroupCommit: true, Paged: true}
}

func TestPagedCheckpointDropsValues(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, pagedOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v := []byte(fmt.Sprintf("value-%03d", i))
		want[k] = v
		r.Put(k, v)
	}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("key-%03d", i)
		r.Delete(k)
		delete(want, k)
	}
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// After a checkpoint every stripe's state lives in the cold index; the
	// hot maps hold no value bytes at all.
	for i := range r.shards {
		sh := &r.shards[i]
		if len(sh.data) != 0 {
			t.Fatalf("stripe %d hot map holds %d entries after checkpoint", i, len(sh.data))
		}
		if sh.cold == nil {
			t.Fatalf("stripe %d has no cold index after checkpoint", i)
		}
	}
	if got := r.TombstonesLive(); got != 20 {
		t.Fatalf("TombstonesLive = %d, want 20", got)
	}
	// Reads fault value bytes back in through the page cache.
	for k, v := range want {
		got, ok := r.Get(k)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("Get(%q) = %q, %v after checkpoint", k, got, ok)
		}
	}
	if st := r.CacheStats(); st.Misses == 0 {
		t.Fatalf("cold reads did not touch the page cache: %+v", st)
	}
	if err := r.PersistErr(); err != nil {
		t.Fatalf("PersistErr = %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPagedReopen(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, pagedOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		r.Put(fmt.Sprintf("key-%03d", i), []byte(fmt.Sprintf("v%03d", i)))
	}
	r.Delete("key-007")
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint writes land in the hot overlay and the log tail.
	r.Put("key-001", []byte("overwritten"))
	r.Put("late", []byte("tail"))
	stamp7, ok := r.Version("key-007")
	if !ok || !stamp7.Deleted {
		t.Fatalf("Version(key-007) = %+v, %v", stamp7, ok)
	}
	// Crash-stop: no closing checkpoint, reopen replays the tail over the
	// cold index.
	if err := r.Abandon(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir, pagedOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if n := r2.Len(); n != 100 { // 100 puts - 1 delete + 1 late
		t.Fatalf("Len after reopen = %d, want 100", n)
	}
	if got, ok := r2.Get("key-001"); !ok || string(got) != "overwritten" {
		t.Fatalf("Get(key-001) = %q, %v", got, ok)
	}
	if got, ok := r2.Get("key-042"); !ok || string(got) != "v042" {
		t.Fatalf("Get(key-042) = %q, %v", got, ok)
	}
	if got, ok := r2.Get("late"); !ok || string(got) != "tail" {
		t.Fatalf("Get(late) = %q, %v", got, ok)
	}
	v7, ok := r2.Version("key-007")
	if !ok || !v7.Deleted || !v7.Stamp.Equal(stamp7.Stamp) {
		t.Fatalf("tombstone lost on reopen: %+v, %v (want stamp %v)", v7, ok, stamp7.Stamp)
	}
	if got := r2.TombstonesLive(); got != 1 {
		t.Fatalf("TombstonesLive after reopen = %d, want 1", got)
	}
}

func TestPagedSyncConverges(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, pagedOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 64; i++ {
		a.Put(fmt.Sprintf("key-%03d", i), []byte(fmt.Sprintf("v%03d", i)))
	}
	if err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	b := NewReplicaShards("b", 8)
	res, err := Sync(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transferred != 64 {
		t.Fatalf("first sync = %+v", res)
	}
	// A second sync over the converged pair must take the metadata-only fast
	// path: stamps are causally equal forked pairs, so no cold value needs
	// faulting and nothing moves.
	misses := a.CacheStats().Misses
	res, err = Sync(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transferred+res.Reconciled+res.Merged+res.Pruned != 0 || len(res.Conflicts) != 0 {
		t.Fatalf("idle sync moved data: %+v", res)
	}
	if after := a.CacheStats().Misses; after != misses {
		t.Fatalf("idle sync faulted %d cold values", after-misses)
	}
	// Divergence after the checkpoint converges through promotion.
	b.Put("key-000", []byte("newer"))
	if _, err := Sync(a, b, nil); err != nil {
		t.Fatal(err)
	}
	if got, ok := a.Get("key-000"); !ok || string(got) != "newer" {
		t.Fatalf("a[key-000] = %q, %v", got, ok)
	}
}

func TestPagedDiscardTombstones(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, pagedOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	r.Put("gone", []byte("v"))
	r.Put("kept", []byte("v"))
	r.Delete("gone")
	tombs := r.Tombstones(0)
	if len(tombs) != 1 {
		t.Fatalf("Tombstones = %v", tombs)
	}
	// Stale evidence: the tombstone was re-established after the epoch the
	// caller proved propagation for — never discard.
	if n := r.DiscardTombstones(0, map[string]uint64{"gone": tombs["gone"] - 1}); n != 0 {
		t.Fatalf("discard with stale epoch dropped %d tombstones", n)
	}
	// A revived key must never be discarded even with a matching epoch.
	if n := r.DiscardTombstones(0, map[string]uint64{"kept": tombs["gone"]}); n != 0 {
		t.Fatalf("discard of a live key dropped %d entries", n)
	}
	if n := r.DiscardTombstones(0, tombs); n != 1 {
		t.Fatalf("discard = %d, want 1", n)
	}
	if got := r.TombstonesLive(); got != 0 {
		t.Fatalf("TombstonesLive = %d after discard", got)
	}
	if _, ok := r.Version("gone"); ok {
		t.Fatal("discarded tombstone still has stored state")
	}
	if keys := r.Keys(); len(keys) != 1 || keys[0] != "kept" {
		t.Fatalf("Keys = %v", keys)
	}
	// The discard survives checkpoint + reopen.
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir, pagedOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, ok := r2.Version("gone"); ok {
		t.Fatal("discarded tombstone resurrected on reopen")
	}
	if got := r2.TombstonesLive(); got != 0 {
		t.Fatalf("TombstonesLive after reopen = %d", got)
	}
}

func TestPagedDiscardColdTombstone(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, pagedOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Put("k", []byte("v"))
	r.Delete("k")
	if err := r.Checkpoint(); err != nil { // tombstone now cold
		t.Fatal(err)
	}
	tombs := r.Tombstones(0)
	if n := r.DiscardTombstones(0, tombs); n != 1 {
		t.Fatalf("discard = %d, want 1", n)
	}
	if _, ok := r.Version("k"); ok {
		t.Fatal("cold tombstone still visible after discard")
	}
	if n := r.Len(); n != 0 {
		t.Fatalf("Len = %d", n)
	}
	// Checkpoint rewrites the stripe without the dropped entry.
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if cs := r.shards[0].cold; cs != nil && cs.find("k") >= 0 {
		t.Fatal("dropped entry survived the checkpoint rewrite")
	}
}

func TestPagedSnapshotAndClone(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, pagedOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 50; i++ {
		r.Put(fmt.Sprintf("key-%03d", i), []byte(fmt.Sprintf("v%03d", i)))
	}
	r.Delete("key-013")
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap, err := r.SnapshotBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 49 {
		t.Fatalf("restored Len = %d", got.Len())
	}
	if v, ok := got.Get("key-025"); !ok || string(v) != "v025" {
		t.Fatalf("restored Get = %q, %v", v, ok)
	}
	c := r.Clone("c")
	if c.Len() != 49 {
		t.Fatalf("clone Len = %d", c.Len())
	}
	if v, ok := c.Version("key-013"); !ok || !v.Deleted {
		t.Fatalf("clone lost the tombstone: %+v, %v", v, ok)
	}
}

package kvstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"

	"versionstamp/internal/core"
	"versionstamp/internal/encoding"
)

// Binary snapshots: the same label + shard layout + entries a JSON snapshot
// carries, but with the length-prefixed entry codec and compact binary
// stamps instead of a JSON document with text stamps. A leading version byte
// distinguishes the two on disk and on the wire: JSON snapshots start with
// '{', binary ones with binarySnapshotVersion, and Restore/Adopt sniff it,
// so old snapshots keep loading forever.
//
//	snapshot := version-byte uvarint(len(label)) label uvarint(shards)
//	            uvarint(count) entry*

// binarySnapshotVersion tags the binary snapshot format. It can never
// collide with the first byte of a JSON document.
const binarySnapshotVersion = 0x02

// maxSnapshotEntries bounds the entry count a decoder will pre-trust.
const maxSnapshotEntries = 1 << 31

// maxSnapshotShards bounds a snapshot's recorded stripe count: a corrupt or
// hostile layout field must not force allocating millions of stripes. The
// bound applies to both snapshot formats.
const maxSnapshotShards = 1 << 16

// SnapshotBinary serializes the replica in the binary format; Restore loads
// it back (sniffing the leading byte). It carries exactly the state of
// Snapshot at a fraction of the bytes.
func (r *Replica) SnapshotBinary() ([]byte, error) {
	return r.snapshotBinary(-1)
}

// SnapshotShardBinary serializes only stripe idx in the binary format.
func (r *Replica) SnapshotShardBinary(idx int) ([]byte, error) {
	if idx < 0 || idx >= len(r.shards) {
		return nil, fmt.Errorf("kvstore: shard %d out of range of %d", idx, len(r.shards))
	}
	return r.snapshotBinary(idx)
}

func (r *Replica) snapshotBinary(idx int) ([]byte, error) {
	var entries []encoding.Entry
	for i := range r.shards {
		if idx >= 0 && i != idx {
			continue
		}
		sh := &r.shards[i]
		sh.mu.RLock()
		for k, v := range sh.data {
			entries = append(entries, encoding.Entry{
				Key: k, Value: v.Value, Deleted: v.Deleted, Stamp: v.Stamp,
			})
		}
		if cs := sh.cold; cs != nil {
			for x := 0; x < cs.count(); x++ {
				if cs.dropped[x] {
					continue
				}
				k := cs.key(x)
				if _, shadowed := sh.data[k]; shadowed {
					continue
				}
				e := encoding.Entry{Key: k, Deleted: cs.deleted[x], Stamp: cs.stamps[x]}
				if !e.Deleted {
					buf, err := r.coldValue(i, cs, x, k)
					if err != nil {
						sh.mu.RUnlock()
						return nil, fmt.Errorf("kvstore: snapshot shard %d: %w", i, err)
					}
					e.Value = buf
				}
				entries = append(entries, e)
			}
		}
		sh.mu.RUnlock()
	}
	return encodeBinarySnapshot(r.label, len(r.shards), entries), nil
}

// encodeBinarySnapshot builds the binary snapshot document from already
// collected entries — shared by the lock-per-stripe snapshot paths and the
// durable checkpoint path, which holds the stripe lock itself.
func encodeBinarySnapshot(label string, shards int, entries []encoding.Entry) []byte {
	sort.Slice(entries, func(a, b int) bool { return entries[a].Key < entries[b].Key })
	out := []byte{binarySnapshotVersion}
	out = binary.AppendUvarint(out, uint64(len(label)))
	out = append(out, label...)
	out = binary.AppendUvarint(out, uint64(shards))
	out = binary.AppendUvarint(out, uint64(len(entries)))
	for _, e := range entries {
		out = encoding.AppendEntry(out, e)
	}
	return out
}

// snapshotLayout reports the stripe count a snapshot records, without
// decoding its entries; 0 means the snapshot predates layout recording.
func snapshotLayout(data []byte) (int, error) {
	if len(data) > 0 && data[0] == binarySnapshotVersion {
		off := 1
		n, used := binary.Uvarint(data[off:])
		if used <= 0 || n > 1<<16 {
			return 0, fmt.Errorf("kvstore: snapshot layout: bad label length")
		}
		off += used
		if uint64(len(data)-off) < n {
			return 0, fmt.Errorf("kvstore: snapshot layout: truncated label")
		}
		off += int(n)
		shards, used := binary.Uvarint(data[off:])
		if used <= 0 || shards > maxSnapshotShards {
			return 0, fmt.Errorf("kvstore: snapshot layout: bad shard count")
		}
		return int(shards), nil
	}
	var snap snapshotDoc
	if err := json.Unmarshal(data, &snap); err != nil {
		return 0, fmt.Errorf("kvstore: snapshot layout: %w", err)
	}
	if snap.Shards < 0 || snap.Shards > maxSnapshotShards {
		return 0, fmt.Errorf("kvstore: snapshot layout: bad shard count %d", snap.Shards)
	}
	return snap.Shards, nil
}

// decodeBinarySnapshot parses a binary snapshot document (data starts at
// the already-verified version byte) into its label, recorded stripe count
// and flat entry list.
func decodeBinarySnapshot(data []byte) (label string, shards int, entries []encoding.Entry, err error) {
	off := 1
	n, used := binary.Uvarint(data[off:])
	if used <= 0 || n > 1<<16 {
		return "", 0, nil, fmt.Errorf("kvstore: restore: bad label length")
	}
	off += used
	if uint64(len(data)-off) < n {
		return "", 0, nil, fmt.Errorf("kvstore: restore: truncated label")
	}
	label = string(data[off : off+int(n)])
	off += int(n)
	shards64, used := binary.Uvarint(data[off:])
	if used <= 0 || shards64 > maxSnapshotShards {
		return "", 0, nil, fmt.Errorf("kvstore: restore: bad shard count")
	}
	off += used
	count, used := binary.Uvarint(data[off:])
	if used <= 0 || count > maxSnapshotEntries {
		return "", 0, nil, fmt.Errorf("kvstore: restore: bad entry count")
	}
	off += used
	entries = make([]encoding.Entry, 0, capEntries(count, data[off:]))
	for i := uint64(0); i < count; i++ {
		e, used, err := encoding.DecodeEntry(data[off:])
		if err != nil {
			return "", 0, nil, fmt.Errorf("kvstore: restore entry %d: %w", i, err)
		}
		off += used
		entries = append(entries, e)
	}
	if off != len(data) {
		return "", 0, nil, fmt.Errorf("kvstore: restore: %d trailing bytes", len(data)-off)
	}
	return label, int(shards64), entries, nil
}

// coldEntryMeta is one entry of a binary snapshot as the paged loader sees
// it: metadata plus the value's location within the snapshot bytes (valOff
// -1 for tombstones), never the value itself.
type coldEntryMeta struct {
	key     string
	deleted bool
	stamp   core.Stamp
	valOff  int // offset of the value bytes within the snapshot, -1 if none
	valLen  int
}

// decodeBinarySnapshotMeta walks a binary snapshot (data starts at the
// already-verified version byte) calling fn per entry without copying any
// value bytes — the decoder behind cold stripe indexes. Layout checks mirror
// decodeBinarySnapshot.
func decodeBinarySnapshotMeta(data []byte, fn func(coldEntryMeta) error) error {
	off := 1
	n, used := binary.Uvarint(data[off:])
	if used <= 0 || n > 1<<16 {
		return fmt.Errorf("kvstore: restore: bad label length")
	}
	off += used
	if uint64(len(data)-off) < n {
		return fmt.Errorf("kvstore: restore: truncated label")
	}
	off += int(n)
	shards64, used := binary.Uvarint(data[off:])
	if used <= 0 || shards64 > maxSnapshotShards {
		return fmt.Errorf("kvstore: restore: bad shard count")
	}
	off += used
	count, used := binary.Uvarint(data[off:])
	if used <= 0 || count > maxSnapshotEntries {
		return fmt.Errorf("kvstore: restore: bad entry count")
	}
	off += used
	for i := uint64(0); i < count; i++ {
		e, valOff, valLen, used, err := encoding.DecodeEntryMeta(data[off:])
		if err != nil {
			return fmt.Errorf("kvstore: restore entry %d: %w", i, err)
		}
		m := coldEntryMeta{key: e.Key, deleted: e.Deleted, stamp: e.Stamp, valOff: -1}
		if valOff >= 0 {
			m.valOff, m.valLen = off+valOff, valLen
		}
		off += used
		if err := fn(m); err != nil {
			return err
		}
	}
	if off != len(data) {
		return fmt.Errorf("kvstore: restore: %d trailing bytes", len(data)-off)
	}
	return nil
}

// capEntries bounds a wire-supplied entry count by the bytes present (every
// encoded entry consumes at least one byte), so a hostile count prefix
// cannot force a huge preallocation.
func capEntries(count uint64, rest []byte) int {
	if count > uint64(len(rest)) {
		return len(rest)
	}
	return int(count)
}

// restoreBinary deserializes a binary snapshot into a fresh replica.
func restoreBinary(data []byte) (*Replica, error) {
	label, shards, entries, err := decodeBinarySnapshot(data)
	if err != nil {
		return nil, err
	}
	if shards < 1 {
		shards = DefaultShards
	}
	r := NewReplicaShards(label, shards)
	for _, e := range entries {
		sh := r.shardFor(e.Key)
		sh.data[e.Key] = Versioned{Value: e.Value, Deleted: e.Deleted, Stamp: e.Stamp}
		if e.Deleted {
			sh.tombs[e.Key] = 0
		}
	}
	return r, nil
}

package kvstore

import (
	"encoding/binary"
	"fmt"
	"sort"

	"versionstamp/internal/encoding"
)

// Binary snapshots: the same label + shard layout + entries a JSON snapshot
// carries, but with the length-prefixed entry codec and compact binary
// stamps instead of a JSON document with text stamps. A leading version byte
// distinguishes the two on disk and on the wire: JSON snapshots start with
// '{', binary ones with binarySnapshotVersion, and Restore/Adopt sniff it,
// so old snapshots keep loading forever.
//
//	snapshot := version-byte uvarint(len(label)) label uvarint(shards)
//	            uvarint(count) entry*

// binarySnapshotVersion tags the binary snapshot format. It can never
// collide with the first byte of a JSON document.
const binarySnapshotVersion = 0x02

// maxSnapshotEntries bounds the entry count a decoder will pre-trust.
const maxSnapshotEntries = 1 << 31

// SnapshotBinary serializes the replica in the binary format; Restore loads
// it back (sniffing the leading byte). It carries exactly the state of
// Snapshot at a fraction of the bytes.
func (r *Replica) SnapshotBinary() ([]byte, error) {
	return r.snapshotBinary(-1), nil
}

// SnapshotShardBinary serializes only stripe idx in the binary format.
func (r *Replica) SnapshotShardBinary(idx int) ([]byte, error) {
	if idx < 0 || idx >= len(r.shards) {
		return nil, fmt.Errorf("kvstore: shard %d out of range of %d", idx, len(r.shards))
	}
	return r.snapshotBinary(idx), nil
}

func (r *Replica) snapshotBinary(idx int) []byte {
	var entries []encoding.Entry
	for i := range r.shards {
		if idx >= 0 && i != idx {
			continue
		}
		sh := &r.shards[i]
		sh.mu.RLock()
		for k, v := range sh.data {
			entries = append(entries, encoding.Entry{
				Key: k, Value: v.Value, Deleted: v.Deleted, Stamp: v.Stamp,
			})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].Key < entries[b].Key })

	out := []byte{binarySnapshotVersion}
	out = binary.AppendUvarint(out, uint64(len(r.label)))
	out = append(out, r.label...)
	out = binary.AppendUvarint(out, uint64(len(r.shards)))
	out = binary.AppendUvarint(out, uint64(len(entries)))
	for _, e := range entries {
		out = encoding.AppendEntry(out, e)
	}
	return out
}

// restoreBinary deserializes a binary snapshot (data starts at the version
// byte, already verified).
func restoreBinary(data []byte) (*Replica, error) {
	off := 1
	n, used := binary.Uvarint(data[off:])
	if used <= 0 || n > 1<<16 {
		return nil, fmt.Errorf("kvstore: restore: bad label length")
	}
	off += used
	if uint64(len(data)-off) < n {
		return nil, fmt.Errorf("kvstore: restore: truncated label")
	}
	label := string(data[off : off+int(n)])
	off += int(n)
	shards, used := binary.Uvarint(data[off:])
	if used <= 0 || shards > 1<<16 {
		return nil, fmt.Errorf("kvstore: restore: bad shard count")
	}
	off += used
	count, used := binary.Uvarint(data[off:])
	if used <= 0 || count > maxSnapshotEntries {
		return nil, fmt.Errorf("kvstore: restore: bad entry count")
	}
	off += used

	if shards < 1 {
		shards = DefaultShards
	}
	r := NewReplicaShards(label, int(shards))
	for i := uint64(0); i < count; i++ {
		e, used, err := encoding.DecodeEntry(data[off:])
		if err != nil {
			return nil, fmt.Errorf("kvstore: restore entry %d: %w", i, err)
		}
		off += used
		r.shardFor(e.Key).data[e.Key] = Versioned{Value: e.Value, Deleted: e.Deleted, Stamp: e.Stamp}
	}
	if off != len(data) {
		return nil, fmt.Errorf("kvstore: restore: %d trailing bytes", len(data)-off)
	}
	return r, nil
}

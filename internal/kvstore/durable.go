package kvstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"versionstamp/internal/encoding"
	"versionstamp/internal/pagecache"
	"versionstamp/internal/storage"
	"versionstamp/internal/storage/wal"
)

// Durable replicas: a Replica whose mutations are appended, stripe by
// stripe, to a storage.Backend before the stripe lock releases. Restart is
// local — load each stripe's latest checkpoint and replay its log tail —
// so a replica comes back after a crash with every acknowledged write and
// the exact stamps it had, and anti-entropy picks up precisely where it
// left off. No peer, and no whole-state snapshot, is needed to restart.

// Options configures Open.
type Options struct {
	// Label is the replica's cosmetic label, used only when the directory is
	// fresh; reopened directories keep their recorded label.
	Label string
	// Shards is the stripe count for a fresh directory (0 = DefaultShards).
	// Reopening a directory with a different non-zero Shards is an error:
	// the layout is part of the durable state.
	Shards int
	// Fsync syncs the log after every append. Off by default: writes then
	// survive process crashes but not power loss.
	Fsync bool
	// GroupCommit coalesces fsyncs: appends stage their frames and block on
	// a shared commit barrier, so many concurrent writers amortize one sync.
	// Durability semantics are unchanged — no mutator returns before its
	// window's fsync — only the fsync count drops. Implies Fsync-grade
	// durability regardless of the Fsync flag.
	GroupCommit bool
	// Paged keeps only per-key metadata (stamp, tombstone flag, value
	// location) resident for checkpointed entries; value bytes stay in the
	// checkpoint files and fault in through a sized cache. Requires a
	// backend implementing storage.Pager. See paged.go.
	Paged bool
	// CacheBytes bounds the paged read cache (0 = DefaultCacheBytes).
	CacheBytes int64
}

// metaFile records the immutable facts of a data directory.
const metaFile = "meta.json"

type metaDoc struct {
	Label  string `json:"label"`
	Shards int    `json:"shards"`
}

// Open opens (creating if needed) a WAL-backed replica in dir. Every write
// that returns is on disk — in the stripe's log, or in its checkpoint after
// Checkpoint — and reopening the directory reconstructs the replica from
// checkpoints plus log tails, torn tail records truncated away by the WAL.
// Close checkpoints and releases the directory; a replica that crashes
// without Close just replays more log on the next Open.
func Open(dir string, opts Options) (*Replica, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: open %s: %w", dir, err)
	}
	meta, err := loadOrInitMeta(dir, opts)
	if err != nil {
		return nil, err
	}
	be, err := wal.Open(dir, wal.Options{Fsync: opts.Fsync, GroupCommit: opts.GroupCommit})
	if err != nil {
		return nil, fmt.Errorf("kvstore: open %s: %w", dir, err)
	}
	r, err := openBackend(be, meta.Label, meta.Shards, opts.Paged, opts.CacheBytes)
	if err != nil {
		_ = be.Close()
		return nil, err
	}
	return r, nil
}

// loadOrInitMeta reads dir's metadata, creating it for a fresh directory.
func loadOrInitMeta(dir string, opts Options) (metaDoc, error) {
	path := filepath.Join(dir, metaFile)
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		var meta metaDoc
		if err := json.Unmarshal(raw, &meta); err != nil {
			return metaDoc{}, fmt.Errorf("kvstore: open %s: bad metadata: %w", dir, err)
		}
		if meta.Shards < 1 || meta.Shards > maxSnapshotShards {
			return metaDoc{}, fmt.Errorf("kvstore: open %s: bad recorded stripe count %d", dir, meta.Shards)
		}
		if opts.Shards != 0 && opts.Shards != meta.Shards {
			return metaDoc{}, fmt.Errorf("kvstore: open %s: directory records %d stripes, options ask %d",
				dir, meta.Shards, opts.Shards)
		}
		return meta, nil
	case errors.Is(err, fs.ErrNotExist):
		if opts.Shards > maxSnapshotShards {
			// Reopen enforces the same bound; accepting more here would
			// create a directory that can never be opened again.
			return metaDoc{}, fmt.Errorf("kvstore: open %s: %d stripes exceeds limit %d",
				dir, opts.Shards, maxSnapshotShards)
		}
		meta := metaDoc{Label: opts.Label, Shards: opts.Shards}
		if meta.Shards < 1 {
			meta.Shards = DefaultShards
		}
		doc, err := json.Marshal(meta)
		if err != nil {
			return metaDoc{}, err
		}
		// Atomic + durable: a crash mid-creation must leave no half-written
		// metadata that would brick the directory.
		if err := wal.WriteFileAtomic(path, doc); err != nil {
			return metaDoc{}, fmt.Errorf("kvstore: open %s: %w", dir, err)
		}
		return meta, nil
	default:
		return metaDoc{}, fmt.Errorf("kvstore: open %s: %w", dir, err)
	}
}

// OpenBackend builds a replica over an explicit backend: each stripe's
// checkpoint is loaded and its log replayed in order, then the backend
// starts receiving every new mutation. The backend must not be shared
// between replicas.
//
// A stripe whose durable bytes are corrupt (the backend reports a
// *storage.CorruptError) does not fail the open: the intact prefix the
// backend streamed stays loaded, the stripe is quarantined — reads serve
// what replayed, durable appends are refused, PersistErr reports the damage
// — and peer repair (RepairStripe after an anti-entropy rebuild) restores
// it. Only corruption is tolerated this way; replay I/O failures still fail
// the whole open.
func OpenBackend(be storage.Backend, label string, shards int) (*Replica, error) {
	return openBackend(be, label, shards, false, 0)
}

// OpenBackendPaged is OpenBackend with value paging enabled: the backend
// must implement storage.Pager. Checkpointed entries keep only metadata
// resident; see Options.Paged.
func OpenBackendPaged(be storage.Backend, label string, shards int, cacheBytes int64) (*Replica, error) {
	return openBackend(be, label, shards, true, cacheBytes)
}

func openBackend(be storage.Backend, label string, shards int, paged bool, cacheBytes int64) (*Replica, error) {
	r := NewReplicaShards(label, shards)
	if paged {
		pager, ok := be.(storage.Pager)
		if !ok {
			return nil, fmt.Errorf("kvstore: paged replica needs a backend implementing storage.Pager, got %T", be)
		}
		if cacheBytes <= 0 {
			cacheBytes = DefaultCacheBytes
		}
		r.paged, r.pager, r.cache = true, pager, pagecache.New(cacheBytes)
	}
	n := len(r.shards) // NewReplicaShards clamps to >= 1
	damaged := make(map[int]error)
	for i := 0; i < n; i++ {
		sh := &r.shards[i]
		err := be.ReplayShard(i,
			func(snap []byte) error {
				if r.paged {
					return r.loadShardCheckpointPaged(i, snap)
				}
				return r.loadShardCheckpoint(i, snap)
			},
			func(rec storage.Record) error {
				if rec.Reset {
					sh.data = make(map[string]Versioned)
					sh.cold = nil
					sh.tombs = make(map[string]uint64)
					return nil
				}
				e := rec.Entry
				if ShardIndex(e.Key, n) != i {
					return fmt.Errorf("kvstore: replay shard %d: key %q belongs to shard %d",
						i, e.Key, ShardIndex(e.Key, n))
				}
				sh.data[e.Key] = Versioned{Value: e.Value, Deleted: e.Deleted, Stamp: e.Stamp}
				if e.Deleted {
					sh.tombs[e.Key] = 0
				} else {
					delete(sh.tombs, e.Key)
				}
				return nil
			})
		if err != nil {
			var ce *storage.CorruptError
			if !errors.As(err, &ce) {
				return nil, err
			}
			damaged[i] = err
		}
		if r.paged && sh.cold != nil {
			// The checkpoint callback stored payload-relative value offsets
			// (the region isn't known mid-replay); anchor them now.
			gen, base := r.pager.CheckpointRegion(i)
			cs := sh.cold
			cs.gen, cs.base = gen, base
			for x := range cs.offs {
				if cs.lens[x] > 0 {
					cs.offs[x] += base
				}
			}
		}
	}
	r.backend = be
	if ab, ok := be.(storage.AsyncBackend); ok {
		r.asyncBE = ab
	}
	for i, err := range damaged {
		r.QuarantineStripe(i, err)
	}
	return r, nil
}

// loadShardCheckpoint installs a per-shard binary snapshot into stripe i.
// The entry list is decoded directly — building a throwaway Replica per
// stripe just to tear it apart again would cost O(stripes²) shard structs
// on the startup path.
func (r *Replica) loadShardCheckpoint(i int, snap []byte) error {
	if len(snap) == 0 {
		return nil
	}
	if snap[0] != binarySnapshotVersion {
		// A checkpoint that is not a snapshot at all is at-rest damage the
		// backend's checksum did not cover (legacy headerless files): scope
		// it to the stripe like any other corruption.
		return &storage.CorruptError{Shard: i,
			Err: fmt.Errorf("kvstore: shard %d checkpoint: not a binary snapshot", i)}
	}
	_, _, entries, err := decodeBinarySnapshot(snap)
	if err != nil {
		return &storage.CorruptError{Shard: i,
			Err: fmt.Errorf("kvstore: shard %d checkpoint: %w", i, err)}
	}
	for _, e := range entries {
		if ShardIndex(e.Key, len(r.shards)) != i {
			return fmt.Errorf("kvstore: shard %d checkpoint: key %q belongs to shard %d",
				i, e.Key, ShardIndex(e.Key, len(r.shards)))
		}
		r.shards[i].data[e.Key] = Versioned{Value: e.Value, Deleted: e.Deleted, Stamp: e.Stamp}
		if e.Deleted {
			r.shards[i].tombs[e.Key] = 0
		}
	}
	return nil
}

// loadShardCheckpointPaged installs a per-shard snapshot as a cold index:
// keys, stamps, tombstone flags and value locations become resident, the
// value bytes stay in the checkpoint file. Offsets are payload-relative
// here; openBackend anchors them against the checkpoint region once the
// replay returns.
func (r *Replica) loadShardCheckpointPaged(i int, snap []byte) error {
	if len(snap) == 0 {
		return nil
	}
	if snap[0] != binarySnapshotVersion {
		return &storage.CorruptError{Shard: i,
			Err: fmt.Errorf("kvstore: shard %d checkpoint: not a binary snapshot", i)}
	}
	cs, err := buildColdStripe(i, len(r.shards), snap, 0, 0)
	if err != nil {
		return &storage.CorruptError{Shard: i,
			Err: fmt.Errorf("kvstore: shard %d checkpoint: %w", i, err)}
	}
	sh := &r.shards[i]
	sh.cold = cs
	for x := 0; x < cs.count(); x++ {
		if cs.deleted[x] {
			sh.tombs[strings.Clone(cs.key(x))] = 0
		}
	}
	return nil
}

// Checkpoint writes every stripe's state as a binary snapshot into the
// backend and truncates the stripe logs, bounding replay work on the next
// Open. Each stripe checkpoints atomically under its own lock; writers to
// other stripes are never blocked. No-op without a backend.
//
// A checkpoint captures the full in-memory state, so a successful pass over
// every stripe also heals an earlier append failure: the writes the failed
// appends covered are now in the checkpoints, and PersistErr resets —
// unless a new failure arrived during the pass, which stays reported.
// Quarantined stripes are skipped: checkpointing one would overwrite the
// damaged log with only the intact prefix that replayed, silently blessing
// the data loss. They heal through RepairStripe after a peer rebuild, and
// while any remain PersistErr stays set.
func (r *Replica) Checkpoint() error {
	if r.backend == nil {
		return nil
	}
	// Settle in-flight group-commit acks first, so a failed async append is
	// reflected in the persistSeq sampled below rather than racing past it.
	r.awaitDurable()
	r.persistMu.Lock()
	seq := r.persistSeq
	r.persistMu.Unlock()
	skipped := false
	for i := range r.shards {
		if r.StripeQuarantined(i) {
			skipped = true
			continue
		}
		if err := r.checkpointShard(i); err != nil {
			return err
		}
	}
	if skipped {
		return nil // healthy stripes are checkpointed; the damage report stands
	}
	r.persistMu.Lock()
	defer r.persistMu.Unlock()
	if r.persistSeq != seq {
		return r.persistErr // something failed mid-pass; durability still in doubt
	}
	r.persistErr = nil
	return nil
}

// checkpointShard snapshots stripe i and hands it to the backend while
// holding the stripe lock, so no append can fall between the snapshot and
// the backend's log truncation. The lock is taken without an epoch bump —
// a checkpoint mutates nothing, so summary caches stay warm.
func (r *Replica) checkpointShard(i int) error {
	sh := &r.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := r.checkpointShardLocked(i); err != nil {
		return fmt.Errorf("kvstore: checkpoint shard %d: %w", i, err)
	}
	return nil
}

// checkpointShardLocked builds stripe i's binary snapshot and hands it to
// the backend. The stripe's lock must be held — shared by the Checkpoint
// path and the wholesale-adoption persistence path, so both always produce
// identical checkpoint documents.
func (r *Replica) checkpointShardLocked(i int) error {
	sh := &r.shards[i]
	if r.paged {
		return r.checkpointShardPagedLocked(i)
	}
	entries := make([]encoding.Entry, 0, len(sh.data))
	for k, v := range sh.data {
		entries = append(entries, encoding.Entry{
			Key: k, Value: v.Value, Deleted: v.Deleted, Stamp: v.Stamp,
		})
	}
	return r.backend.Checkpoint(i, encodeBinarySnapshot(r.label, len(r.shards), entries))
}

// checkpointShardPagedLocked is the paged checkpoint: cold values are bulk
// re-read from the current checkpoint payload (one read, not one fault per
// key), merged with the hot overlay, and the stripe's memory drops to the
// fresh cold index — after a checkpoint every value byte is pageable again.
// A stripe whose hot map is empty and whose cold index is clean still
// matches its on-disk checkpoint, so the rewrite is skipped entirely.
func (r *Replica) checkpointShardPagedLocked(i int) error {
	sh := &r.shards[i]
	cs := sh.cold
	if len(sh.data) == 0 && cs != nil && !cs.dirty {
		if gen, _ := r.pager.CheckpointRegion(i); gen == cs.gen {
			return nil
		}
	}
	entries := make([]encoding.Entry, 0, sh.countLocked())
	for k, v := range sh.data {
		entries = append(entries, encoding.Entry{
			Key: k, Value: v.Value, Deleted: v.Deleted, Stamp: v.Stamp,
		})
	}
	if cs != nil {
		var payload []byte
		for x := 0; x < cs.count(); x++ {
			if cs.dropped[x] {
				continue
			}
			k := cs.key(x)
			if _, shadowed := sh.data[k]; shadowed {
				continue
			}
			e := encoding.Entry{Key: k, Deleted: cs.deleted[x], Stamp: cs.stamps[x]}
			if !e.Deleted && cs.lens[x] > 0 {
				if payload == nil {
					var err error
					payload, err = r.pager.CheckpointPayload(i, cs.gen)
					if err != nil {
						return err
					}
				}
				off := cs.offs[x] - cs.base
				end := off + int64(cs.lens[x])
				if off < 0 || end > int64(len(payload)) {
					return fmt.Errorf("value of %q at [%d,%d) outside checkpoint payload of %d bytes",
						k, off, end, len(payload))
				}
				e.Value = payload[off:end]
			}
			entries = append(entries, e)
		}
	}
	snap := encodeBinarySnapshot(r.label, len(r.shards), entries)
	gen, base, err := r.pager.CheckpointLocate(i, snap)
	if err != nil {
		return err
	}
	ncs, err := buildColdStripe(i, len(r.shards), snap, gen, base)
	if err != nil {
		return err
	}
	sh.cold = ncs
	sh.data = make(map[string]Versioned)
	r.cache.InvalidateShard(i)
	return nil
}

// Compact asks the backend to drop log records superseded within each
// stripe's log — cheaper than a checkpoint (no snapshot is written) and
// safe to run concurrently with writers. No-op without a backend.
func (r *Replica) Compact() error {
	if r.backend == nil {
		return nil
	}
	for i := range r.shards {
		if r.StripeQuarantined(i) {
			continue // the backend would refuse; repair goes through RepairStripe
		}
		if err := r.backend.Compact(i); err != nil {
			return fmt.Errorf("kvstore: compact shard %d: %w", i, err)
		}
	}
	return nil
}

// Abandon releases the backend without checkpointing: durable state stays
// exactly as the logs and prior checkpoints left it, as a crash would leave
// it — except the file handles and the data directory's lock are freed so
// the directory can be reopened immediately. The crash-simulation half of
// the shutdown API (crash tests, benchmarks, failover drills); production
// shutdown is Close. The replica remains readable in memory; writes after
// Abandon fail their appends and surface through PersistErr.
func (r *Replica) Abandon() error {
	if r.backend == nil {
		return nil
	}
	return r.backend.Close()
}

// QuarantineStripe marks stripe i's durable bytes as damaged: reads keep
// serving whatever is in memory, durable appends to the stripe are silently
// skipped (the log is latched anyway), and PersistErr reports the damage so
// durable deployments see the degradation. Idempotent per stripe — the
// first damage report wins. Quarantine clears only through RepairStripe,
// after the stripe's true state has been rebuilt (normally from ring peers
// via anti-entropy; the stamps make that safe, see the package comment).
func (r *Replica) QuarantineStripe(i int, err error) {
	if i < 0 || i >= len(r.shards) {
		return
	}
	r.quarMu.Lock()
	if r.quar == nil {
		r.quar = make(map[int]error)
	}
	if _, dup := r.quar[i]; dup {
		r.quarMu.Unlock()
		return
	}
	if err == nil {
		err = &storage.CorruptError{Shard: i, Err: fmt.Errorf("quarantined")}
	}
	r.quar[i] = err
	r.quarMu.Unlock()
	r.shards[i].quar.Store(true)
	r.notePersistErr(fmt.Errorf("kvstore: stripe %d quarantined: %w", i, err))
}

// StripeQuarantined reports whether stripe i is quarantined.
func (r *Replica) StripeQuarantined(i int) bool {
	return i >= 0 && i < len(r.shards) && r.shards[i].quar.Load()
}

// Quarantined returns the quarantined stripe indices, sorted.
func (r *Replica) Quarantined() []int {
	r.quarMu.Lock()
	defer r.quarMu.Unlock()
	out := make([]int, 0, len(r.quar))
	for i := range r.quar {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// QuarantineErr returns stripe i's damage report, or nil when healthy.
func (r *Replica) QuarantineErr(i int) error {
	r.quarMu.Lock()
	defer r.quarMu.Unlock()
	return r.quar[i]
}

// RepairStripe re-establishes stripe i's durability after its in-memory
// state has been rebuilt (anti-entropy from the other owners, or any other
// trusted source): it checkpoints the stripe — the backend replaces the
// damaged log wholesale, clearing its own latch — and lifts the quarantine.
// When the last quarantined stripe repairs, a full checkpoint pass runs so
// PersistErr can clear honestly. Calling it on a healthy stripe is just a
// checkpoint.
func (r *Replica) RepairStripe(i int) error {
	if i < 0 || i >= len(r.shards) {
		return fmt.Errorf("kvstore: repair stripe %d out of range of %d", i, len(r.shards))
	}
	if r.backend != nil {
		sh := &r.shards[i]
		sh.mu.Lock()
		err := r.checkpointShardLocked(i)
		if err == nil {
			// Clear the fast-path flag under the stripe lock, so no logSet
			// can observe "quarantined" after the fresh checkpoint exists.
			sh.quar.Store(false)
		}
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("kvstore: repair stripe %d: %w", i, err)
		}
	} else {
		r.shards[i].quar.Store(false)
	}
	r.quarMu.Lock()
	delete(r.quar, i)
	left := len(r.quar)
	r.quarMu.Unlock()
	if left == 0 && r.backend != nil {
		return r.Checkpoint()
	}
	return nil
}

// ScrubNext advances the background scrubber by one stripe: it re-verifies
// the next stripe's durable bytes (frame CRCs, checkpoint checksum) against
// the backend's storage.Verifier and quarantines the stripe if damage is
// found — demoting a live stripe the moment a sector rots, instead of at
// the next restart. Returns the stripe verified and its damage report (nil
// when healthy). Backends without verification (Memory, nil) return (-1,
// nil); a full pass is Shards() calls. Already-quarantined stripes are
// skipped — their damage is known.
func (r *Replica) ScrubNext() (int, error) {
	v, ok := r.backend.(storage.Verifier)
	if !ok {
		return -1, nil
	}
	r.quarMu.Lock()
	i := r.scrubCursor % len(r.shards)
	r.scrubCursor++
	r.quarMu.Unlock()
	if r.StripeQuarantined(i) {
		return i, nil
	}
	if err := v.VerifyShard(i); err != nil {
		var ce *storage.CorruptError
		if errors.As(err, &ce) {
			r.QuarantineStripe(i, err)
		}
		return i, err
	}
	return i, nil
}

// Close checkpoints every stripe and releases the backend — the graceful
// shutdown path, after which reopening replays no log at all. No-op
// without a backend. The replica remains readable in memory afterwards;
// writes after Close fail their backend appends and surface through
// PersistErr (the backend field stays set so concurrent writers never
// observe it changing).
func (r *Replica) Close() error {
	if r.backend == nil {
		return nil
	}
	err := r.Checkpoint()
	if cerr := r.backend.Close(); err == nil {
		err = cerr
	}
	return err
}

// Package hints is the durable hinted-handoff queue of the partitioned
// cluster: when a quorum write cannot reach one of a stripe's owners, the
// coordinator forks the key's stamp (kvstore.ForkCopy) and queues the
// detached copy here, addressed to the unreachable owner. When the owner's
// heartbeats resume, the queue drains: each copy is delivered by
// MergeVersioned, which joins the hint's stamp into the owner's — so the
// handoff is exactly a deferred synchronization in the paper's fork-join
// model, and the stamps prove on delivery whether the hinted write is still
// news, already obsolete, or in conflict.
//
// Queues persist through the same storage.Backend abstraction as the store
// itself (a WAL on disk, memory under test): every Add appends a record,
// and a drain checkpoints the survivors, so a coordinator crash loses no
// promised handoff.
package hints

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"

	"versionstamp/internal/core"
	"versionstamp/internal/encoding"
	"versionstamp/internal/storage"
)

// Hint is one write owed to a currently unreachable owner.
type Hint struct {
	// Target is the node ID the copy is addressed to.
	Target string
	// Key is the store key.
	Key string
	// Value, Deleted and Stamp are the detached copy (a ForkCopy result).
	Value   []byte
	Deleted bool
	Stamp   core.Stamp
}

// hintSlot is the single backend stripe the queue uses: hints are few and
// drained wholesale per target, so one log suffices.
const hintSlot = 0

// snapshotVersion tags the checkpoint format.
const snapshotVersion = 0x01

// Queue is a durable multi-target FIFO of hints. Safe for concurrent use.
type Queue struct {
	mu      sync.Mutex
	be      storage.Backend
	pending map[string][]Hint // target -> hints in Add order
	count   int
	cap     int   // per-target bound; 0 = unbounded
	dropped int64 // hints discarded by the cap since Open
}

// Options configures a Queue.
type Options struct {
	// CapPerTarget bounds the hints queued per target; when an Add would
	// exceed it, the oldest hint for that target is dropped. A dropped
	// hint is a lost promise, not lost data: the write it carried is still
	// on the coordinator's replica, and anti-entropy converges it to the
	// target after revival — the cap trades a bounded amount of handoff
	// latency for a bounded queue. 0 = unbounded.
	CapPerTarget int
}

// Open loads a queue from its backend (replaying checkpoint and log) and
// takes ownership of it: Close closes the backend.
func Open(be storage.Backend) (*Queue, error) {
	return OpenOptions(be, Options{})
}

// OpenOptions is Open with explicit options. A cap applies to replayed
// hints too, so reopening an over-full queue under a (new) cap trims it.
func OpenOptions(be storage.Backend, opts Options) (*Queue, error) {
	q := &Queue{be: be, pending: make(map[string][]Hint), cap: opts.CapPerTarget}
	err := be.ReplayShard(hintSlot,
		func(snapshot []byte) error { return q.loadSnapshot(snapshot) },
		func(rec storage.Record) error {
			if rec.Reset {
				q.pending = make(map[string][]Hint)
				q.count = 0
				return nil
			}
			h, err := decodeHint(rec.Entry)
			if err != nil {
				return err
			}
			q.push(h)
			return nil
		})
	if err != nil {
		return nil, fmt.Errorf("hints: replay: %w", err)
	}
	return q, nil
}

// push appends h in memory, enforcing the per-target cap by dropping the
// oldest hint of the same target. Caller holds mu (or is still
// single-threaded in Open).
func (q *Queue) push(h Hint) {
	hs := append(q.pending[h.Target], h)
	q.count++
	if q.cap > 0 && len(hs) > q.cap {
		over := len(hs) - q.cap
		hs = append(hs[:0], hs[over:]...)
		q.count -= over
		q.dropped += int64(over)
	}
	q.pending[h.Target] = hs
}

// Dropped reports how many hints the per-target cap has discarded since
// Open. Each was an oldest-first eviction; anti-entropy is the backstop
// that still converges the data they promised.
func (q *Queue) Dropped() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropped
}

// Add durably queues one hint.
func (q *Queue) Add(h Hint) error {
	if h.Target == "" || strings.ContainsRune(h.Target, 0) {
		return fmt.Errorf("hints: invalid target %q", h.Target)
	}
	if strings.ContainsRune(h.Key, 0) {
		return fmt.Errorf("hints: key %q contains NUL", h.Key)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.be.Append(hintSlot, storage.Record{Entry: encodeHint(h)}); err != nil {
		return fmt.Errorf("hints: append: %w", err)
	}
	q.push(h)
	return nil
}

// Take removes and returns every hint addressed to target, in Add order,
// checkpointing the survivors so a crash after a successful drain cannot
// replay it. On error nothing is removed.
func (q *Queue) Take(target string) ([]Hint, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	taken := q.pending[target]
	if len(taken) == 0 {
		return nil, nil
	}
	snap, err := q.snapshotLocked(target)
	if err != nil {
		return nil, err
	}
	if err := q.be.Checkpoint(hintSlot, snap); err != nil {
		return nil, fmt.Errorf("hints: checkpoint: %w", err)
	}
	delete(q.pending, target)
	q.count -= len(taken)
	return taken, nil
}

// Requeue durably re-adds hints whose delivery did not complete (e.g. a
// conflict awaiting a resolver, or the target died again mid-drain).
func (q *Queue) Requeue(hs []Hint) error {
	for _, h := range hs {
		if err := q.Add(h); err != nil {
			return err
		}
	}
	return nil
}

// Pending returns the number of hints queued for target.
func (q *Queue) Pending(target string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending[target])
}

// Len returns the total queued hint count.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// Targets returns the node IDs with pending hints, sorted.
func (q *Queue) Targets() []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]string, 0, len(q.pending))
	for t, hs := range q.pending {
		if len(hs) > 0 {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// Close releases the backend. Pending hints stay durable; a later Open
// resumes them.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.be.Close()
}

// snapshotLocked serializes every pending hint except those addressed to
// skip ("" skips nothing). Targets in sorted order, hints in Add order.
func (q *Queue) snapshotLocked(skip string) ([]byte, error) {
	var n uint64
	for t, hs := range q.pending {
		if t != skip {
			n += uint64(len(hs))
		}
	}
	out := append([]byte(nil), snapshotVersion)
	out = binary.AppendUvarint(out, n)
	targets := make([]string, 0, len(q.pending))
	for t := range q.pending {
		if t != skip {
			targets = append(targets, t)
		}
	}
	sort.Strings(targets)
	for _, t := range targets {
		for _, h := range q.pending[t] {
			out = encoding.AppendEntry(out, encodeHint(h))
		}
	}
	return out, nil
}

// loadSnapshot parses a checkpoint produced by snapshotLocked.
func (q *Queue) loadSnapshot(snapshot []byte) error {
	if len(snapshot) == 0 {
		return nil
	}
	if snapshot[0] != snapshotVersion {
		return fmt.Errorf("hints: unknown snapshot version 0x%02x", snapshot[0])
	}
	data := snapshot[1:]
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return fmt.Errorf("hints: bad snapshot count")
	}
	data = data[used:]
	q.pending = make(map[string][]Hint)
	q.count = 0
	for i := uint64(0); i < n; i++ {
		e, used, err := encoding.DecodeEntry(data)
		if err != nil {
			return fmt.Errorf("hints: snapshot entry %d: %w", i, err)
		}
		data = data[used:]
		h, err := decodeHint(e)
		if err != nil {
			return err
		}
		q.push(h)
	}
	if len(data) != 0 {
		return fmt.Errorf("hints: %d trailing snapshot bytes", len(data))
	}
	return nil
}

// encodeHint packs a hint into the store's wire entry shape, the target
// riding in the key under a NUL separator (forbidden in both fields).
func encodeHint(h Hint) encoding.Entry {
	return encoding.Entry{
		Key:     h.Target + "\x00" + h.Key,
		Value:   h.Value,
		Deleted: h.Deleted,
		Stamp:   h.Stamp,
	}
}

func decodeHint(e encoding.Entry) (Hint, error) {
	sep := strings.IndexByte(e.Key, 0)
	if sep < 1 {
		return Hint{}, fmt.Errorf("hints: malformed record key %q", e.Key)
	}
	return Hint{
		Target:  e.Key[:sep],
		Key:     e.Key[sep+1:],
		Value:   e.Value,
		Deleted: e.Deleted,
		Stamp:   e.Stamp,
	}, nil
}

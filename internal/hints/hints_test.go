package hints

import (
	"path/filepath"
	"reflect"
	"testing"

	"versionstamp/internal/core"
	"versionstamp/internal/storage"
	"versionstamp/internal/storage/wal"
)

func mkHint(target, key, val string) Hint {
	return Hint{Target: target, Key: key, Value: []byte(val), Stamp: core.Seed().Update()}
}

func TestAddTakeFIFO(t *testing.T) {
	q, err := Open(storage.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []Hint{mkHint("b", "k1", "v1"), mkHint("b", "k2", "v2"), mkHint("c", "k3", "v3")} {
		if err := q.Add(h); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 3 || q.Pending("b") != 2 || q.Pending("c") != 1 {
		t.Fatalf("Len=%d Pending(b)=%d Pending(c)=%d", q.Len(), q.Pending("b"), q.Pending("c"))
	}
	if got := q.Targets(); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("Targets = %v", got)
	}
	hs, err := q.Take("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 2 || hs[0].Key != "k1" || hs[1].Key != "k2" {
		t.Fatalf("Take(b) = %+v", hs)
	}
	if q.Len() != 1 || q.Pending("b") != 0 {
		t.Fatalf("after take: Len=%d Pending(b)=%d", q.Len(), q.Pending("b"))
	}
	if hs, _ := q.Take("b"); hs != nil {
		t.Fatalf("second take returned %v", hs)
	}
}

func TestAddValidation(t *testing.T) {
	q, _ := Open(storage.NewMemory())
	if err := q.Add(Hint{Target: "", Key: "k"}); err == nil {
		t.Fatal("empty target should error")
	}
	if err := q.Add(Hint{Target: "a\x00b", Key: "k"}); err == nil {
		t.Fatal("NUL in target should error")
	}
	if err := q.Add(Hint{Target: "a", Key: "k\x00x"}); err == nil {
		t.Fatal("NUL in key should error")
	}
}

func TestRequeue(t *testing.T) {
	q, _ := Open(storage.NewMemory())
	h := mkHint("b", "k", "v")
	if err := q.Add(h); err != nil {
		t.Fatal(err)
	}
	hs, err := q.Take("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Requeue(hs); err != nil {
		t.Fatal(err)
	}
	if q.Pending("b") != 1 {
		t.Fatalf("Pending(b) = %d after requeue", q.Pending("b"))
	}
}

// A queue over the WAL backend survives close/reopen with hints, stamps and
// order intact, and a Take's checkpoint is equally durable.
func TestDurableAcrossReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "hints")
	open := func() *Queue {
		be, err := wal.Open(dir, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		q, err := Open(be)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}

	q := open()
	stamps := make(map[string]core.Stamp)
	for _, h := range []Hint{mkHint("b", "k1", "v1"), mkHint("c", "k2", "v2"), mkHint("b", "k3", "v3")} {
		stamps[h.Key] = h.Stamp
		if err := q.Add(h); err != nil {
			t.Fatal(err)
		}
	}
	// Tombstone hint too.
	if err := q.Add(Hint{Target: "b", Key: "k4", Deleted: true, Stamp: core.Seed().Update()}); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	q = open()
	if q.Len() != 4 || q.Pending("b") != 3 || q.Pending("c") != 1 {
		t.Fatalf("after reopen: Len=%d b=%d c=%d", q.Len(), q.Pending("b"), q.Pending("c"))
	}
	hs, err := q.Take("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 3 || hs[0].Key != "k1" || hs[1].Key != "k3" || !hs[2].Deleted {
		t.Fatalf("Take(b) after reopen = %+v", hs)
	}
	for _, h := range hs[:2] {
		if core.Compare(h.Stamp, stamps[h.Key]) != core.Equal {
			t.Fatalf("stamp of %s changed across reopen", h.Key)
		}
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	// The drain checkpointed: reopening must not resurrect b's hints.
	q = open()
	if q.Pending("b") != 0 || q.Pending("c") != 1 {
		t.Fatalf("after drain+reopen: b=%d c=%d", q.Pending("b"), q.Pending("c"))
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCapDropsOldest(t *testing.T) {
	q, err := OpenOptions(storage.NewMemory(), Options{CapPerTarget: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := q.Add(mkHint("b", string(rune('a'+i)), "v")); err != nil {
			t.Fatal(err)
		}
	}
	if q.Pending("b") != 3 || q.Len() != 3 {
		t.Fatalf("Pending(b)=%d Len=%d, want 3", q.Pending("b"), q.Len())
	}
	if q.Dropped() != 7 {
		t.Fatalf("Dropped=%d, want 7", q.Dropped())
	}
	hs, err := q.Take("b")
	if err != nil {
		t.Fatal(err)
	}
	// The newest 3 survive, in Add order.
	if len(hs) != 3 || hs[0].Key != "h" || hs[1].Key != "i" || hs[2].Key != "j" {
		t.Fatalf("Take(b) = %+v", hs)
	}
	// Other targets are unaffected by b's overflow.
	if err := q.Add(mkHint("c", "x", "v")); err != nil {
		t.Fatal(err)
	}
	if q.Pending("c") != 1 {
		t.Fatalf("Pending(c)=%d", q.Pending("c"))
	}
}

func TestCapAppliesOnReplay(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "hints")
	w, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := Open(w) // unbounded writer
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := q.Add(mkHint("b", string(rune('a'+i)), "v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen capped: replay must trim to the newest 4.
	w, err = wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, err = OpenOptions(w, Options{CapPerTarget: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if q.Pending("b") != 4 {
		t.Fatalf("Pending(b)=%d after capped replay, want 4", q.Pending("b"))
	}
	hs, err := q.Take("b")
	if err != nil {
		t.Fatal(err)
	}
	if hs[0].Key != "g" || hs[3].Key != "j" {
		t.Fatalf("capped replay kept %+v", hs)
	}
}

package hints

import (
	"path/filepath"
	"reflect"
	"testing"

	"versionstamp/internal/core"
	"versionstamp/internal/storage"
	"versionstamp/internal/storage/wal"
)

func mkHint(target, key, val string) Hint {
	return Hint{Target: target, Key: key, Value: []byte(val), Stamp: core.Seed().Update()}
}

func TestAddTakeFIFO(t *testing.T) {
	q, err := Open(storage.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []Hint{mkHint("b", "k1", "v1"), mkHint("b", "k2", "v2"), mkHint("c", "k3", "v3")} {
		if err := q.Add(h); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 3 || q.Pending("b") != 2 || q.Pending("c") != 1 {
		t.Fatalf("Len=%d Pending(b)=%d Pending(c)=%d", q.Len(), q.Pending("b"), q.Pending("c"))
	}
	if got := q.Targets(); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("Targets = %v", got)
	}
	hs, err := q.Take("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 2 || hs[0].Key != "k1" || hs[1].Key != "k2" {
		t.Fatalf("Take(b) = %+v", hs)
	}
	if q.Len() != 1 || q.Pending("b") != 0 {
		t.Fatalf("after take: Len=%d Pending(b)=%d", q.Len(), q.Pending("b"))
	}
	if hs, _ := q.Take("b"); hs != nil {
		t.Fatalf("second take returned %v", hs)
	}
}

func TestAddValidation(t *testing.T) {
	q, _ := Open(storage.NewMemory())
	if err := q.Add(Hint{Target: "", Key: "k"}); err == nil {
		t.Fatal("empty target should error")
	}
	if err := q.Add(Hint{Target: "a\x00b", Key: "k"}); err == nil {
		t.Fatal("NUL in target should error")
	}
	if err := q.Add(Hint{Target: "a", Key: "k\x00x"}); err == nil {
		t.Fatal("NUL in key should error")
	}
}

func TestRequeue(t *testing.T) {
	q, _ := Open(storage.NewMemory())
	h := mkHint("b", "k", "v")
	if err := q.Add(h); err != nil {
		t.Fatal(err)
	}
	hs, err := q.Take("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Requeue(hs); err != nil {
		t.Fatal(err)
	}
	if q.Pending("b") != 1 {
		t.Fatalf("Pending(b) = %d after requeue", q.Pending("b"))
	}
}

// A queue over the WAL backend survives close/reopen with hints, stamps and
// order intact, and a Take's checkpoint is equally durable.
func TestDurableAcrossReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "hints")
	open := func() *Queue {
		be, err := wal.Open(dir, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		q, err := Open(be)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}

	q := open()
	stamps := make(map[string]core.Stamp)
	for _, h := range []Hint{mkHint("b", "k1", "v1"), mkHint("c", "k2", "v2"), mkHint("b", "k3", "v3")} {
		stamps[h.Key] = h.Stamp
		if err := q.Add(h); err != nil {
			t.Fatal(err)
		}
	}
	// Tombstone hint too.
	if err := q.Add(Hint{Target: "b", Key: "k4", Deleted: true, Stamp: core.Seed().Update()}); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	q = open()
	if q.Len() != 4 || q.Pending("b") != 3 || q.Pending("c") != 1 {
		t.Fatalf("after reopen: Len=%d b=%d c=%d", q.Len(), q.Pending("b"), q.Pending("c"))
	}
	hs, err := q.Take("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 3 || hs[0].Key != "k1" || hs[1].Key != "k3" || !hs[2].Deleted {
		t.Fatalf("Take(b) after reopen = %+v", hs)
	}
	for _, h := range hs[:2] {
		if core.Compare(h.Stamp, stamps[h.Key]) != core.Equal {
			t.Fatalf("stamp of %s changed across reopen", h.Key)
		}
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	// The drain checkpointed: reopening must not resurrect b's hints.
	q = open()
	if q.Pending("b") != 0 || q.Pending("c") != 1 {
		t.Fatalf("after drain+reopen: b=%d c=%d", q.Pending("b"), q.Pending("c"))
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
}

// Package vv implements version vectors, the baseline mechanism version
// stamps replace (paper Section 1).
//
// Two forms are provided:
//
//   - Vector: the classic fixed-size version vector of Parker et al. (1983),
//     a sequence of integer counters indexed by a statically known replica
//     number, as in Figure 1 of the paper.
//   - Dynamic: a dynamic version vector (in the spirit of Ratner, Reiher,
//     Popek 1997) mapping replica identifiers to counters, which supports
//     replica creation — but only given a source of globally unique
//     identifiers (see Allocator). The impossibility of allocating such
//     identifiers under partition is the identification problem the paper
//     solves; the allocators in this package make the failure mode
//     observable (experiment E8).
//
// Both forms order replicas by pointwise counter comparison, which for
// correctly allocated identifiers coincides with causal-history inclusion on
// frontiers; the simulator verifies this agreement alongside the stamp
// equivalence (experiment E4/E6).
package vv

import (
	"fmt"
	"strings"
)

// Ordering is the four-way comparison outcome, aligned with package core.
type Ordering int

// Ordering values; see package core for the replication-level meaning.
const (
	Equal Ordering = iota + 1
	Before
	After
	Concurrent
)

// String returns a human-readable rendering of the ordering.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return "invalid"
	}
}

// Vector is a classic fixed-size version vector: counter k counts the
// updates performed at replica k. All replicas of one system must use the
// same length.
type Vector []uint64

// NewVector returns the zero vector for a system of n replicas.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Update returns a copy of v with the counter of replica i incremented,
// recording one update performed at that replica.
func (v Vector) Update(i int) (Vector, error) {
	if i < 0 || i >= len(v) {
		return nil, fmt.Errorf("vv: replica index %d out of range [0,%d)", i, len(v))
	}
	out := v.Clone()
	out[i]++
	return out, nil
}

// Join returns the pointwise maximum of v and w, the vector of a replica
// that has seen every update either side has seen.
func Join(v, w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("vv: join of vectors with lengths %d and %d", len(v), len(w))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = max(v[i], w[i])
	}
	return out, nil
}

// Compare relates two vectors pointwise.
func Compare(v, w Vector) (Ordering, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("vv: compare of vectors with lengths %d and %d", len(v), len(w))
	}
	leq, geq := true, true
	for i := range v {
		if v[i] > w[i] {
			leq = false
		}
		if v[i] < w[i] {
			geq = false
		}
	}
	switch {
	case leq && geq:
		return Equal, nil
	case leq:
		return Before, nil
	case geq:
		return After, nil
	default:
		return Concurrent, nil
	}
}

// String renders the vector as [c0,c1,…].
func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, c := range v {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

package vv

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Allocator produces replica identifiers for dynamic version vectors. The
// paper's Section 1 observes that every existing scheme needs one of these,
// and that none of them works under partitioned operation with guaranteed
// uniqueness:
//
//   - a CentralServer cannot be reached from a disconnected partition;
//   - a SiteCounter only pushes the problem one level up (the site ids
//     themselves must be allocated uniquely);
//   - a RandomAllocator avoids coordination but provides only probabilistic
//     uniqueness, which the paper explicitly rules out.
//
// Version stamps need no allocator at all: forking derives new identities
// locally. Experiment E8 exercises these failure modes.
type Allocator interface {
	// NewID returns a fresh replica identifier, or an error when the
	// allocator cannot currently guarantee uniqueness (e.g. partitioned).
	NewID() (ReplicaID, error)
}

// ErrPartitioned is returned by CentralServer while disconnected: no new
// replica identifiers can be minted, so no replica can be created — the
// failure that motivates version stamps.
var ErrPartitioned = errors.New("vv: identifier server unreachable (partitioned)")

// CentralServer models the "request a unique identifier from a server"
// scheme: a single counter that is reachable only while connected.
type CentralServer struct {
	next        ReplicaID
	partitioned bool
}

var _ Allocator = (*CentralServer)(nil)

// NewCentralServer returns a connected central identifier server.
func NewCentralServer() *CentralServer { return &CentralServer{} }

// SetPartitioned simulates losing (true) or regaining (false) connectivity
// to the server.
func (c *CentralServer) SetPartitioned(p bool) { c.partitioned = p }

// Partitioned reports whether the server is currently unreachable.
func (c *CentralServer) Partitioned() bool { return c.partitioned }

// NewID mints the next identifier, failing while partitioned.
func (c *CentralServer) NewID() (ReplicaID, error) {
	if c.partitioned {
		return 0, ErrPartitioned
	}
	id := c.next
	c.next++
	return id, nil
}

// SiteCounter models hierarchical allocation: identifiers are (site,
// sequence) pairs packed into 64 bits. Each site can mint locally — but the
// site identifier itself must have been allocated uniquely beforehand, so
// the scheme cannot bootstrap new sites under partition (it merely relocates
// the identification problem).
type SiteCounter struct {
	site ReplicaID
	next ReplicaID
}

var _ Allocator = (*SiteCounter)(nil)

// siteShift positions the site number in the identifier's high 32 bits.
const siteShift = 32

// NewSiteCounter returns an allocator for the given pre-assigned site
// number. Site numbers must be globally unique; see the package comment.
func NewSiteCounter(site uint32) *SiteCounter {
	return &SiteCounter{site: ReplicaID(site)}
}

// NewID mints the next identifier for this site.
func (s *SiteCounter) NewID() (ReplicaID, error) {
	if s.next >= 1<<siteShift {
		return 0, fmt.Errorf("vv: site %d exhausted its identifier space", uint32(s.site))
	}
	id := s.site<<siteShift | s.next
	s.next++
	return id, nil
}

// RandomAllocator models probabilistically unique identifiers: random 64-bit
// values. It always succeeds, even under partition, but uniqueness is only
// probabilistic — two replicas that draw the same identifier will silently
// corrupt causality tracking. The paper's mechanism exists precisely to
// avoid this compromise ("our work does not rely on probabilistic
// uniqueness", Section 1).
type RandomAllocator struct {
	rng *rand.Rand
}

var _ Allocator = (*RandomAllocator)(nil)

// NewRandomAllocator returns an allocator drawing from the given seed.
func NewRandomAllocator(seed int64) *RandomAllocator {
	return &RandomAllocator{rng: rand.New(rand.NewSource(seed))}
}

// NewID draws a uniformly random 64-bit identifier.
func (r *RandomAllocator) NewID() (ReplicaID, error) {
	return ReplicaID(r.rng.Uint64()), nil
}

// CollisionProbability returns the birthday-bound estimate of at least one
// identifier collision after n draws from a space of 2^bits values:
// 1 - exp(-n(n-1) / 2^(bits+1)).
func CollisionProbability(n int, bits int) float64 {
	if n < 2 {
		return 0
	}
	exponent := -float64(n) * float64(n-1) / math.Exp2(float64(bits+1))
	return 1 - math.Exp(exponent)
}

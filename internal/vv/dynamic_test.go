package vv

import (
	"math"
	"testing"
)

func TestDynamicBasics(t *testing.T) {
	d := NewDynamic(7)
	if d.ID() != 7 {
		t.Errorf("ID = %d", d.ID())
	}
	if d.Entries() != 0 {
		t.Errorf("fresh vector has %d entries", d.Entries())
	}
	d2 := d.Update()
	if d2.Counter(7) != 1 {
		t.Errorf("Counter(7) = %d, want 1", d2.Counter(7))
	}
	if d.Counter(7) != 0 {
		t.Error("Update mutated the receiver")
	}
	if d2.String() != "r7{r7:1}" {
		t.Errorf("String = %q", d2.String())
	}
}

func TestDynamicFork(t *testing.T) {
	d := NewDynamic(1).Update()
	a, b, err := d.Fork(2)
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	if a.ID() != 1 || b.ID() != 2 {
		t.Errorf("fork ids = %d, %d", a.ID(), b.ID())
	}
	if CompareDynamic(a, b) != Equal {
		t.Error("fork results must compare equal")
	}
	if _, _, err := d.Fork(1); err == nil {
		t.Error("fork with the parent's id must fail")
	}
	// Counters are independent copies.
	a2 := a.Update()
	if b.Counter(1) != 1 || a2.Counter(1) != 2 {
		t.Errorf("counters aliased: a2=%v b=%v", a2, b)
	}
}

func TestDynamicCompareScenarios(t *testing.T) {
	a := NewDynamic(1)
	b, c, _ := a.Update().Fork(2)
	if CompareDynamic(b, c) != Equal {
		t.Error("siblings must be equal")
	}
	b1 := b.Update()
	if CompareDynamic(c, b1) != Before {
		t.Error("stale vs updated must be before")
	}
	if CompareDynamic(b1, c) != After {
		t.Error("updated vs stale must be after")
	}
	c1 := c.Update()
	if CompareDynamic(b1, c1) != Concurrent {
		t.Error("independent updates must be concurrent")
	}
}

func TestDynamicJoinInto(t *testing.T) {
	a := NewDynamic(1).Update()
	b, c, _ := a.Fork(2)
	c = c.Update().Update()
	j := b.JoinInto(c)
	if j.ID() != 1 {
		t.Errorf("join keeps the receiver id; got %d", j.ID())
	}
	if j.Counter(1) != 1 || j.Counter(2) != 2 {
		t.Errorf("join counters = %v", j)
	}
	// The retired replica's entry lingers forever.
	if j.Entries() != 2 {
		t.Errorf("entries = %d, want 2", j.Entries())
	}
}

func TestDynamicSync(t *testing.T) {
	a := NewDynamic(1).Update()
	b, c, _ := a.Fork(2)
	b = b.Update()
	c = c.Update()
	sb, sc := Sync(b, c)
	if CompareDynamic(sb, sc) != Equal {
		t.Error("after sync both replicas must be equal")
	}
	if sb.ID() != 1 || sc.ID() != 2 {
		t.Errorf("sync must preserve identities: %d, %d", sb.ID(), sc.ID())
	}
	if sb.Counter(1) != 2 || sb.Counter(2) != 1 {
		t.Errorf("sync counters = %v", sb)
	}
}

func TestDynamicEntryGrowth(t *testing.T) {
	// The vector accumulates one entry per replica ever created — the
	// growth problem version stamps avoid (E6's shape).
	alloc := NewCentralServer()
	id, _ := alloc.NewID()
	cur := NewDynamic(id)
	for i := 0; i < 50; i++ {
		nid, err := alloc.NewID()
		if err != nil {
			t.Fatalf("NewID: %v", err)
		}
		parent, child, err := cur.Fork(nid)
		if err != nil {
			t.Fatalf("Fork: %v", err)
		}
		child = child.Update()
		cur = parent.JoinInto(child)
	}
	if cur.Entries() != 50 {
		t.Errorf("entries after 50 fork/update/join cycles = %d, want 50", cur.Entries())
	}
	if cur.EncodedSize() != 8+16*50 {
		t.Errorf("EncodedSize = %d", cur.EncodedSize())
	}
}

func TestCentralServerPartition(t *testing.T) {
	s := NewCentralServer()
	a, err := s.NewID()
	if err != nil {
		t.Fatalf("NewID: %v", err)
	}
	b, err := s.NewID()
	if err != nil {
		t.Fatalf("NewID: %v", err)
	}
	if a == b {
		t.Error("central server minted duplicate ids")
	}
	s.SetPartitioned(true)
	if !s.Partitioned() {
		t.Error("Partitioned() = false")
	}
	if _, err := s.NewID(); err == nil {
		t.Error("NewID must fail while partitioned")
	}
	s.SetPartitioned(false)
	if _, err := s.NewID(); err != nil {
		t.Errorf("NewID after heal: %v", err)
	}
}

func TestSiteCounterUniqueAcrossSites(t *testing.T) {
	s1 := NewSiteCounter(1)
	s2 := NewSiteCounter(2)
	seen := make(map[ReplicaID]bool)
	for i := 0; i < 100; i++ {
		a, err := s1.NewID()
		if err != nil {
			t.Fatalf("site1: %v", err)
		}
		b, err := s2.NewID()
		if err != nil {
			t.Fatalf("site2: %v", err)
		}
		if seen[a] || seen[b] || a == b {
			t.Fatalf("duplicate id: %d / %d", a, b)
		}
		seen[a], seen[b] = true, true
	}
}

func TestRandomAllocatorAlwaysSucceeds(t *testing.T) {
	r := NewRandomAllocator(1)
	seen := make(map[ReplicaID]bool)
	for i := 0; i < 1000; i++ {
		id, err := r.NewID()
		if err != nil {
			t.Fatalf("NewID: %v", err)
		}
		seen[id] = true
	}
	if len(seen) < 999 {
		t.Errorf("suspiciously many collisions in 1000 draws: %d distinct", len(seen))
	}
}

func TestCollisionProbability(t *testing.T) {
	if got := CollisionProbability(0, 64); got != 0 {
		t.Errorf("P(0 draws) = %v", got)
	}
	if got := CollisionProbability(1, 64); got != 0 {
		t.Errorf("P(1 draw) = %v", got)
	}
	// Birthday paradox sanity: 2^32 draws from 64 bits ≈ 39%.
	got := CollisionProbability(1<<32, 64)
	if math.Abs(got-0.393) > 0.01 {
		t.Errorf("P(2^32 draws, 64 bits) = %v, want ≈0.393", got)
	}
	// Monotone in n.
	if CollisionProbability(10, 16) >= CollisionProbability(1000, 16) {
		t.Error("collision probability must grow with n")
	}
	// Tiny space: near-certain collision.
	if CollisionProbability(1000, 8) < 0.99 {
		t.Error("1000 draws from 8 bits must almost surely collide")
	}
}

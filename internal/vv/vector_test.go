package vv

import (
	"testing"
)

// TestFigure1 reproduces Figure 1 of the paper: fixed version vectors
// tracking updates among three replicas A, B, C.
//
//	A: [0,0,0] -u-> [1,0,0] --------> [1,0,0] -u-> [2,0,0]
//	B: [0,0,0] ----> [1,0,0] (from A) ----> [1,0,1] (sync with C)
//	C: [0,0,0] -u-> [0,0,1] ----> [1,0,1] (sync with B)
func TestFigure1(t *testing.T) {
	mustUpdate := func(v Vector, i int) Vector {
		t.Helper()
		out, err := v.Update(i)
		if err != nil {
			t.Fatalf("update: %v", err)
		}
		return out
	}
	mustJoin := func(v, w Vector) Vector {
		t.Helper()
		out, err := Join(v, w)
		if err != nil {
			t.Fatalf("join: %v", err)
		}
		return out
	}

	a := NewVector(3)
	b := NewVector(3)
	c := NewVector(3)
	if a.String() != "[0,0,0]" {
		t.Fatalf("initial A = %v", a)
	}

	// A updates.
	a = mustUpdate(a, 0)
	if a.String() != "[1,0,0]" {
		t.Fatalf("A after update = %v, want [1,0,0]", a)
	}
	// B synchronizes with A.
	b = mustJoin(b, a)
	if b.String() != "[1,0,0]" {
		t.Fatalf("B after sync = %v, want [1,0,0]", b)
	}
	// C updates.
	c = mustUpdate(c, 2)
	if c.String() != "[0,0,1]" {
		t.Fatalf("C after update = %v, want [0,0,1]", c)
	}
	// B and C synchronize: both end at [1,0,1].
	merged := mustJoin(b, c)
	b, c = merged.Clone(), merged.Clone()
	if b.String() != "[1,0,1]" || c.String() != "[1,0,1]" {
		t.Fatalf("B,C after sync = %v, %v, want [1,0,1]", b, c)
	}
	// A updates again.
	a = mustUpdate(a, 0)
	if a.String() != "[2,0,0]" {
		t.Fatalf("A after second update = %v, want [2,0,0]", a)
	}

	// Relationship checks at the final frontier: B and C are equivalent
	// ("all replicas that have seen the same updates share the same version
	// vector value"); A is mutually inconsistent with both.
	if o, _ := Compare(b, c); o != Equal {
		t.Errorf("B vs C = %v, want equal", o)
	}
	if o, _ := Compare(a, b); o != Concurrent {
		t.Errorf("A vs B = %v, want concurrent", o)
	}
	if o, _ := Compare(a, c); o != Concurrent {
		t.Errorf("A vs C = %v, want concurrent", o)
	}
}

func TestVectorCompare(t *testing.T) {
	tests := []struct {
		v, w Vector
		want Ordering
	}{
		{Vector{0, 0}, Vector{0, 0}, Equal},
		{Vector{1, 0}, Vector{1, 0}, Equal},
		{Vector{0, 0}, Vector{1, 0}, Before},
		{Vector{1, 2}, Vector{1, 1}, After},
		{Vector{1, 0}, Vector{0, 1}, Concurrent},
	}
	for _, tt := range tests {
		got, err := Compare(tt.v, tt.w)
		if err != nil {
			t.Fatalf("Compare(%v,%v): %v", tt.v, tt.w, err)
		}
		if got != tt.want {
			t.Errorf("Compare(%v,%v) = %v, want %v", tt.v, tt.w, got, tt.want)
		}
	}
}

func TestVectorLengthMismatch(t *testing.T) {
	if _, err := Compare(Vector{0}, Vector{0, 0}); err == nil {
		t.Error("Compare must reject length mismatch")
	}
	if _, err := Join(Vector{0}, Vector{0, 0}); err == nil {
		t.Error("Join must reject length mismatch")
	}
}

func TestVectorUpdateOutOfRange(t *testing.T) {
	v := NewVector(2)
	if _, err := v.Update(2); err == nil {
		t.Error("Update(2) on a 2-vector must fail")
	}
	if _, err := v.Update(-1); err == nil {
		t.Error("Update(-1) must fail")
	}
}

func TestVectorImmutability(t *testing.T) {
	v := NewVector(2)
	w, _ := v.Update(0)
	if v[0] != 0 {
		t.Error("Update mutated the receiver")
	}
	j, _ := Join(v, w)
	j[1] = 99
	if v[1] != 0 || w[1] != 0 {
		t.Error("Join result aliases an input")
	}
	c := v.Clone()
	c[0] = 7
	if v[0] != 0 {
		t.Error("Clone aliases the receiver")
	}
}

func TestOrderingStringVV(t *testing.T) {
	if Equal.String() != "equal" || Before.String() != "before" ||
		After.String() != "after" || Concurrent.String() != "concurrent" ||
		Ordering(42).String() != "invalid" {
		t.Error("Ordering.String incorrect")
	}
}

package vv

import (
	"fmt"
	"sort"
	"strings"
)

// ReplicaID is a globally unique replica identifier. Dynamic version vectors
// are correct only when identifiers never collide; producing them without a
// global view is the identification problem of the paper.
type ReplicaID uint64

// Dynamic is a dynamic version vector: a mapping from replica identifiers to
// update counters, owned by one replica. Unlike fixed vectors, entries are
// created lazily as replicas appear; unlike version stamps, entries for
// retired replicas are never garbage-collected without a global protocol,
// so the vector grows with the number of replicas ever created (compare
// experiment E6).
//
// Dynamic values are immutable; operations return new values.
type Dynamic struct {
	id       ReplicaID
	counters map[ReplicaID]uint64
}

// NewDynamic creates the vector of a fresh replica with the given id and no
// recorded updates.
func NewDynamic(id ReplicaID) Dynamic {
	return Dynamic{id: id, counters: map[ReplicaID]uint64{}}
}

// ID returns the identifier of the replica owning this vector.
func (d Dynamic) ID() ReplicaID { return d.id }

// Counter returns the recorded update count for the given replica.
func (d Dynamic) Counter(id ReplicaID) uint64 { return d.counters[id] }

// Entries returns the number of (replica, counter) entries held.
func (d Dynamic) Entries() int { return len(d.counters) }

// clone copies the counter map.
func (d Dynamic) clone() map[ReplicaID]uint64 {
	out := make(map[ReplicaID]uint64, len(d.counters)+1)
	for k, v := range d.counters {
		out[k] = v
	}
	return out
}

// Update records one update performed at this replica.
func (d Dynamic) Update() Dynamic {
	c := d.clone()
	c[d.id]++
	return Dynamic{id: d.id, counters: c}
}

// Fork creates a second replica of this data, carrying the same update
// knowledge under a newly allocated identifier. The new identifier MUST be
// globally unique; obtain it from an Allocator. The receiver is returned
// unchanged as the first result for symmetry with core.Stamp.Fork.
func (d Dynamic) Fork(newID ReplicaID) (Dynamic, Dynamic, error) {
	if newID == d.id {
		return Dynamic{}, Dynamic{}, fmt.Errorf("vv: fork with the parent's own id %d", newID)
	}
	return Dynamic{id: d.id, counters: d.clone()},
		Dynamic{id: newID, counters: d.clone()}, nil
}

// JoinInto merges other into d: the result keeps d's identity and holds the
// pointwise maximum of both counter maps. The other replica is retired; its
// counter entry remains in the map forever (the dynamic-version-vector
// growth problem).
func (d Dynamic) JoinInto(other Dynamic) Dynamic {
	c := d.clone()
	for k, v := range other.counters {
		if v > c[k] {
			c[k] = v
		}
	}
	return Dynamic{id: d.id, counters: c}
}

// Sync merges knowledge both ways without retiring either replica, the
// common anti-entropy step: both results hold the pointwise maximum.
func Sync(a, b Dynamic) (Dynamic, Dynamic) {
	merged := a.JoinInto(b)
	return merged, Dynamic{id: b.id, counters: merged.clone()}
}

// CompareDynamic relates two dynamic vectors pointwise, treating missing
// entries as zero.
func CompareDynamic(a, b Dynamic) Ordering {
	leq, geq := true, true
	for k, va := range a.counters {
		vb := b.counters[k]
		if va > vb {
			leq = false
		}
	}
	for k, vb := range b.counters {
		va := a.counters[k]
		if vb > va {
			geq = false
		}
	}
	switch {
	case leq && geq:
		return Equal
	case leq:
		return Before
	case geq:
		return After
	default:
		return Concurrent
	}
}

// EncodedSize estimates the wire size in bytes of the vector: 8 bytes of id
// plus 8+8 per entry (the size measure used by experiment E6; a varint
// encoding would shrink constants but not the growth shape).
func (d Dynamic) EncodedSize() int {
	return 8 + 16*len(d.counters)
}

// String renders the vector as id{r1:c1,r2:c2,…} with entries sorted by
// replica id.
func (d Dynamic) String() string {
	ids := make([]ReplicaID, 0, len(d.counters))
	for k := range d.counters {
		ids = append(ids, k)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parts := make([]string, len(ids))
	for i, k := range ids {
		parts[i] = fmt.Sprintf("r%d:%d", k, d.counters[k])
	}
	return fmt.Sprintf("r%d{%s}", d.id, strings.Join(parts, ","))
}

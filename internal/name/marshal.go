package name

import (
	"encoding/binary"
	"errors"
	"fmt"

	"versionstamp/internal/bitstr"
)

// Binary wire format for a name:
//
//	uvarint  count                 number of strings
//	repeated (uvarint bitLen, packed bits MSB-first, ceil(bitLen/8) bytes)
//
// Strings are stored in the canonical lexicographic order, so equal names
// produce identical encodings (the format is canonical). The decoder
// re-validates the antichain property, so corrupted or adversarial input
// cannot produce an ill-formed name.

// maxDecodedStrings bounds decoder allocations against corrupt input.
const maxDecodedStrings = 1 << 20

// errTruncated is returned when the input ends mid-value.
var errTruncated = errors.New("name: truncated binary input")

// AppendBinary appends the canonical binary encoding of n to dst.
func (n Name) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(n.ss)))
	for _, s := range n.ss {
		dst = binary.AppendUvarint(dst, uint64(s.Len()))
		dst = appendPackedBits(dst, s)
	}
	return dst
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (n Name) MarshalBinary() ([]byte, error) {
	return n.AppendBinary(nil), nil
}

// EncodedSize returns the exact length in bytes of the binary encoding.
func (n Name) EncodedSize() int {
	size := uvarintLen(uint64(len(n.ss)))
	for _, s := range n.ss {
		size += uvarintLen(uint64(s.Len())) + (s.Len()+7)/8
	}
	return size
}

// DecodeBinary reads one name from the front of src and returns the number
// of bytes consumed. The decoded value is fully validated.
func DecodeBinary(src []byte) (Name, int, error) {
	count, off := binary.Uvarint(src)
	if off <= 0 {
		return Name{}, 0, errTruncated
	}
	if count > maxDecodedStrings {
		return Name{}, 0, fmt.Errorf("name: implausible string count %d", count)
	}
	bits := make([]bitstr.Bits, 0, count)
	for i := uint64(0); i < count; i++ {
		bitLen, m := binary.Uvarint(src[off:])
		if m <= 0 {
			return Name{}, 0, errTruncated
		}
		off += m
		byteLen := (int(bitLen) + 7) / 8
		if bitLen > uint64(maxDecodedStrings) || off+byteLen > len(src) {
			return Name{}, 0, errTruncated
		}
		bits = append(bits, unpackBits(src[off:off+byteLen], int(bitLen)))
		off += byteLen
	}
	n, err := New(bits...)
	if err != nil {
		return Name{}, 0, fmt.Errorf("name: decode: %w", err)
	}
	return n, off, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The input must
// contain exactly one encoded name.
func (n *Name) UnmarshalBinary(data []byte) error {
	decoded, used, err := DecodeBinary(data)
	if err != nil {
		return err
	}
	if used != len(data) {
		return fmt.Errorf("name: %d trailing bytes after encoded name", len(data)-used)
	}
	*n = decoded
	return nil
}

// MarshalText implements encoding.TextMarshaler using the paper's notation.
func (n Name) MarshalText() ([]byte, error) {
	return []byte(n.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (n *Name) UnmarshalText(text []byte) error {
	decoded, err := Parse(string(text))
	if err != nil {
		return err
	}
	*n = decoded
	return nil
}

func appendPackedBits(dst []byte, s bitstr.Bits) []byte {
	var cur byte
	for i := 0; i < s.Len(); i++ {
		bit, _ := s.Bit(i)
		if bit == bitstr.One {
			cur |= 1 << (7 - uint(i%8))
		}
		if i%8 == 7 {
			dst = append(dst, cur)
			cur = 0
		}
	}
	if s.Len()%8 != 0 {
		dst = append(dst, cur)
	}
	return dst
}

func unpackBits(data []byte, bitLen int) bitstr.Bits {
	buf := make([]byte, bitLen)
	for i := 0; i < bitLen; i++ {
		if data[i/8]&(1<<(7-uint(i%8))) != 0 {
			buf[i] = bitstr.One
		} else {
			buf[i] = bitstr.Zero
		}
	}
	return bitstr.Bits(buf)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

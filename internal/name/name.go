// Package name implements the set N of "names" from Section 4 of the paper
// "Version Stamps — Decentralized Version Vectors" (Almeida, Baquero, Fonte,
// ICDCS 2002).
//
// A name is a finite antichain in the prefix-ordered set of finite binary
// strings: a finite set of strings no two of which are comparable. Names are
// ordered by
//
//	n1 ⊑ n2  ⇔  ∀r ∈ n1 ∃s ∈ n2: r ⊑ s
//
// which is the down-set (lower powerdomain) inclusion order. Because names
// hold only maximal elements, this is a genuine partial order, and N is a
// join semilattice: the join of two names is the set of maximal elements of
// their union (Proposition 4.2).
//
// Version stamps (package core) are pairs of names. The id component of a
// stamp denotes a non-overlapping part of "the whole"; the update component
// collects ids as they were when updates were performed.
package name

import (
	"fmt"
	"sort"
	"strings"

	"versionstamp/internal/bitstr"
)

// Name is a finite antichain of binary strings, an element of the join
// semilattice N. The zero value is the empty name, the bottom of N.
//
// Name values are immutable: all methods return new values and never alias
// the receiver's backing storage to caller-visible state.
type Name struct {
	// ss is sorted lexicographically, duplicate-free, and pairwise
	// incomparable (an antichain).
	ss []bitstr.Bits
}

// Empty returns the empty name {}, the bottom of N.
func Empty() Name { return Name{} }

// Epsilon returns the name {ε}. Reachable stamps are seeded with ({ε},{ε}).
func Epsilon() Name { return Name{ss: []bitstr.Bits{bitstr.Epsilon}} }

// Singleton returns the name {b}.
func Singleton(b bitstr.Bits) Name { return Name{ss: []bitstr.Bits{b}} }

// New builds a name from the given strings, validating that they form an
// antichain. Duplicates are rejected. Use MaxOf to build a name from an
// arbitrary set by discarding dominated strings.
func New(bits ...bitstr.Bits) (Name, error) {
	sorted := sortedCopy(bits)
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] == sorted[i] {
			return Name{}, fmt.Errorf("name: duplicate string %v", sorted[i])
		}
	}
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[i].ComparableTo(sorted[j]) {
				return Name{}, fmt.Errorf("name: not an antichain: %v ⊑ %v",
					sorted[i], sorted[j])
			}
		}
	}
	return Name{ss: sorted}, nil
}

// MustNew is New but panics on error; intended for constants and tests.
func MustNew(bits ...bitstr.Bits) Name {
	n, err := New(bits...)
	if err != nil {
		panic(err)
	}
	return n
}

// MaxOf builds the name consisting of the maximal elements of the given set
// of strings. This is total: any set of strings determines a name this way,
// corresponding to the down-set it generates.
func MaxOf(bits ...bitstr.Bits) Name {
	sorted := sortedCopy(bits)
	// After a lexicographic sort every string precedes all of its proper
	// extensions, but its extensions need not be adjacent to it when other
	// branches interleave; a string r is dominated iff some LATER element
	// extends it, and the first extension (if any) appears before any
	// lexicographically larger non-extension... that is not quite true in
	// general sets, so check against the immediately following survivor
	// chain: keep a stack of current maximal candidates.
	var keep []bitstr.Bits
	for _, s := range sorted {
		if len(keep) > 0 && keep[len(keep)-1] == s {
			continue // duplicate
		}
		// Pop any previous candidates that s extends. Because the input is
		// sorted, a prefix of s can only be the most recent candidate(s):
		// any prefix p of s satisfies p <= s lexicographically, and every
		// string strictly between p and s in lex order that is kept would
		// itself start with p... pop while top is a prefix of s.
		for len(keep) > 0 && keep[len(keep)-1].PrefixOf(s) {
			keep = keep[:len(keep)-1]
		}
		keep = append(keep, s)
	}
	return Name{ss: keep}
}

// Parse reads the textual notation used throughout the paper: strings joined
// by '+', e.g. "0+10+111", with "ε" (or "", or "e") for the empty string and
// "∅" (or "0x2205", or "{}") for the empty name. Whitespace around summands
// is ignored. The parsed set must be an antichain.
func Parse(s string) (Name, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "∅" || s == "{}" {
		return Empty(), nil
	}
	parts := strings.Split(s, "+")
	bits := make([]bitstr.Bits, 0, len(parts))
	for _, p := range parts {
		b, err := bitstr.Parse(strings.TrimSpace(p))
		if err != nil {
			return Name{}, fmt.Errorf("name: %w", err)
		}
		bits = append(bits, b)
	}
	n, err := New(bits...)
	if err != nil {
		return Name{}, err
	}
	return n, nil
}

// MustParse is Parse but panics on error; intended for tests and examples.
func MustParse(s string) Name {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

// String renders the name in the paper's notation: summands joined by '+',
// "ε" for the empty string, "∅" for the empty name.
func (n Name) String() string {
	if len(n.ss) == 0 {
		return "∅"
	}
	var sb strings.Builder
	for i, s := range n.ss {
		if i > 0 {
			sb.WriteByte('+')
		}
		sb.WriteString(s.String())
	}
	return sb.String()
}

// Len returns the number of strings in the name.
func (n Name) Len() int { return len(n.ss) }

// IsEmpty reports whether n is the empty name (bottom of N).
func (n Name) IsEmpty() bool { return len(n.ss) == 0 }

// Bits returns a copy of the strings of n in lexicographic order.
func (n Name) Bits() []bitstr.Bits {
	out := make([]bitstr.Bits, len(n.ss))
	copy(out, n.ss)
	return out
}

// At returns the i-th string in lexicographic order; ok=false out of range.
func (n Name) At(i int) (bitstr.Bits, bool) {
	if i < 0 || i >= len(n.ss) {
		return bitstr.Epsilon, false
	}
	return n.ss[i], true
}

// TotalBits returns the summed length of all strings, a size measure used by
// the space experiments (E5/E6).
func (n Name) TotalBits() int {
	total := 0
	for _, s := range n.ss {
		total += s.Len()
	}
	return total
}

// MaxDepth returns the length of the longest string in n.
func (n Name) MaxDepth() int {
	depth := 0
	for _, s := range n.ss {
		if s.Len() > depth {
			depth = s.Len()
		}
	}
	return depth
}

// lowerBound returns the index of the first string >= b in lexicographic
// order. It is sort.Search inlined as a plain loop so the hot comparison
// walks (Covers, Leq, Contains) never materialize a closure: they are
// allocation-free however the compiler feels about escape analysis.
func (n Name) lowerBound(b bitstr.Bits) int {
	lo, hi := 0, len(n.ss)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if n.ss[mid].Compare(b) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Contains reports exact membership of b in the antichain.
func (n Name) Contains(b bitstr.Bits) bool {
	i := n.lowerBound(b)
	return i < len(n.ss) && n.ss[i] == b
}

// Covers reports {b} ⊑ n: some string of n extends b (equivalently, b lies
// in the down-set of n). Implemented by binary search: the extensions of b
// form a contiguous run starting at the first element >= b.
func (n Name) Covers(b bitstr.Bits) bool {
	i := n.lowerBound(b)
	return i < len(n.ss) && b.PrefixOf(n.ss[i])
}

// coversNaive is the specification-level O(|n|) form of Covers, retained for
// differential testing.
func (n Name) coversNaive(b bitstr.Bits) bool {
	for _, s := range n.ss {
		if b.PrefixOf(s) {
			return true
		}
	}
	return false
}

// Leq reports n ⊑ m in the order of Definition 4.1.
func (n Name) Leq(m Name) bool {
	for _, r := range n.ss {
		if !m.Covers(r) {
			return false
		}
	}
	return true
}

// leqNaive is the specification-level quadratic form of Leq, retained for
// differential testing.
func (n Name) leqNaive(m Name) bool {
	for _, r := range n.ss {
		if !m.coversNaive(r) {
			return false
		}
	}
	return true
}

// Geq reports m ⊑ n.
func (n Name) Geq(m Name) bool { return m.Leq(n) }

// Equal reports set equality. Because names are antichains (so ⊑ is a
// partial order, not merely a pre-order), Equal(n,m) ⇔ n ⊑ m ∧ m ⊑ n.
func (n Name) Equal(m Name) bool {
	if len(n.ss) != len(m.ss) {
		return false
	}
	for i := range n.ss {
		if n.ss[i] != m.ss[i] {
			return false
		}
	}
	return true
}

// ComparableTo reports whether n and m are related by ⊑ in either direction.
func (n Name) ComparableTo(m Name) bool { return n.Leq(m) || m.Leq(n) }

// Join returns n ⊔ m: the set of maximal elements of the union
// (Proposition 4.2). It is the least upper bound of n and m in N.
func Join(n, m Name) Name {
	if n.IsEmpty() {
		return m
	}
	if m.IsEmpty() {
		return n
	}
	// When one side already dominates, the join is that side: return it
	// unchanged (names are immutable, so sharing the backing slice is safe).
	// Converged replicas join equal update components on every
	// reconciliation, so this allocation-free path is the steady state.
	if n.Leq(m) {
		return m
	}
	if m.Leq(n) {
		return n
	}
	// Merge the two sorted antichains, discarding dominated strings. Within
	// each input no domination exists, so only cross-domination matters.
	out := make([]bitstr.Bits, 0, len(n.ss)+len(m.ss))
	i, j := 0, 0
	for i < len(n.ss) && j < len(m.ss) {
		a, b := n.ss[i], m.ss[j]
		switch {
		case a == b:
			out = append(out, a)
			i++
			j++
		case a.StrictPrefixOf(b):
			// a is dominated by b; but a may also dominate later elements of
			// m? No: m is an antichain so nothing else in m relates to b,
			// yet a (a prefix of b) could still be a prefix of other m
			// elements — those are antichain-incomparable to b, and a ⊑ b,
			// so a being their prefix is fine; a is dominated regardless.
			i++
		case b.StrictPrefixOf(a):
			j++
		case a.Compare(b) < 0:
			out = append(out, a)
			i++
		default:
			out = append(out, b)
			j++
		}
	}
	out = append(out, n.ss[i:]...)
	out = append(out, m.ss[j:]...)
	return Name{ss: out}
}

// joinNaive is the specification-level form of Join, retained for
// differential testing: maximal elements of the union.
func joinNaive(n, m Name) Name {
	all := append(n.Bits(), m.Bits()...)
	return MaxOf(all...)
}

// Append0 returns n·0 = {s·0 | s ∈ n}: the concatenation of the digit 0
// lifted to sets of strings, used by the left branch of a fork.
func (n Name) Append0() Name { return n.appendBit(bitstr.Zero) }

// Append1 returns n·1 = {s·1 | s ∈ n}: the right branch of a fork.
func (n Name) Append1() Name { return n.appendBit(bitstr.One) }

func (n Name) appendBit(bit byte) Name {
	out := make([]bitstr.Bits, len(n.ss))
	for i, s := range n.ss {
		b, _ := s.AppendBit(bit)
		out[i] = b
	}
	// Appending the same digit to every string preserves both the antichain
	// property and lexicographic order.
	return Name{ss: out}
}

// SiblingPair searches for a string s such that both s·0 and s·1 are members
// of n. Such pairs are what the reduction rule of Section 6 collapses.
// The returned s is the lexicographically least such parent.
func (n Name) SiblingPair() (s bitstr.Bits, ok bool) {
	// In sorted order s·0 and s·1 need not be adjacent (strings extending
	// s·0 sort between them), but s·0 precedes s·1, so scan each member
	// ending in 0 and search for its sibling.
	for _, cand := range n.ss {
		parent, last, hasParent := cand.Parent()
		if !hasParent || last != bitstr.Zero {
			continue
		}
		sib := parent.Append1()
		if n.Contains(sib) {
			return parent, true
		}
	}
	return bitstr.Epsilon, false
}

// CollapseSiblings returns n with the pair {s·0, s·1} replaced by s. Both
// children must be members; otherwise ok=false and n is returned unchanged.
// For an antichain the result is again an antichain (shown in Section 6).
func (n Name) CollapseSiblings(s bitstr.Bits) (Name, bool) {
	c0, c1 := s.Append0(), s.Append1()
	if !n.Contains(c0) || !n.Contains(c1) {
		return n, false
	}
	out := make([]bitstr.Bits, 0, len(n.ss)-1)
	for _, m := range n.ss {
		if m != c0 && m != c1 {
			out = append(out, m)
		}
	}
	out = append(out, s)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return Name{ss: out}, true
}

// Remove returns n with exact member b removed (ok=false if absent).
func (n Name) Remove(b bitstr.Bits) (Name, bool) {
	if !n.Contains(b) {
		return n, false
	}
	out := make([]bitstr.Bits, 0, len(n.ss)-1)
	for _, m := range n.ss {
		if m != b {
			out = append(out, m)
		}
	}
	return Name{ss: out}, true
}

// Add inserts the string b, which must be incomparable to every current
// member; otherwise ok=false and n is returned unchanged.
func (n Name) Add(b bitstr.Bits) (Name, bool) {
	for _, m := range n.ss {
		if m.ComparableTo(b) {
			return n, false
		}
	}
	out := make([]bitstr.Bits, 0, len(n.ss)+1)
	out = append(out, n.ss...)
	out = append(out, b)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return Name{ss: out}, true
}

// IncomparableTo reports whether every string of n is incomparable to every
// string of m — the relation Invariant I2 requires between distinct frontier
// ids.
func (n Name) IncomparableTo(m Name) bool {
	for _, r := range n.ss {
		for _, s := range m.ss {
			if r.ComparableTo(s) {
				return false
			}
		}
	}
	return true
}

// Validate checks the internal representation invariant (sorted,
// duplicate-free antichain). It is used by fuzzing and the simulator's
// self-checks; correct use of the public API cannot violate it.
func (n Name) Validate() error {
	for i := 1; i < len(n.ss); i++ {
		if n.ss[i-1].Compare(n.ss[i]) >= 0 {
			return fmt.Errorf("name: not sorted/duplicate-free at %d: %v, %v",
				i, n.ss[i-1], n.ss[i])
		}
	}
	for i := 0; i < len(n.ss); i++ {
		if !n.ss[i].Valid() {
			return fmt.Errorf("name: invalid bit string %q", string(n.ss[i]))
		}
		for j := i + 1; j < len(n.ss); j++ {
			if n.ss[i].ComparableTo(n.ss[j]) {
				return fmt.Errorf("name: not an antichain: %v ⊑ %v", n.ss[i], n.ss[j])
			}
		}
	}
	return nil
}

func sortedCopy(bits []bitstr.Bits) []bitstr.Bits {
	sorted := make([]bitstr.Bits, len(bits))
	copy(sorted, bits)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Compare(sorted[j]) < 0 })
	return sorted
}

package name

import (
	"math/rand"
	"testing"

	"versionstamp/internal/bitstr"
)

// randName builds a random antichain by inserting random strings and keeping
// only maximal elements.
func randName(rng *rand.Rand, maxStrings, maxLen int) Name {
	n := rng.Intn(maxStrings + 1)
	bits := make([]bitstr.Bits, 0, n)
	for i := 0; i < n; i++ {
		l := rng.Intn(maxLen + 1)
		b := bitstr.Epsilon
		for j := 0; j < l; j++ {
			if rng.Intn(2) == 0 {
				b = b.Append0()
			} else {
				b = b.Append1()
			}
		}
		bits = append(bits, b)
	}
	return MaxOf(bits...)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(bitstr.Bits("0"), bitstr.Bits("01")); err == nil {
		t.Error("New must reject {0, 01}: 0 ⊑ 01")
	}
	if _, err := New(bitstr.Bits("0"), bitstr.Bits("0")); err == nil {
		t.Error("New must reject duplicates")
	}
	n, err := New(bitstr.Bits("00"), bitstr.Bits("011"))
	if err != nil {
		t.Fatalf("New({00,011}): %v", err)
	}
	if n.Len() != 2 {
		t.Errorf("Len = %d, want 2", n.Len())
	}
}

func TestPaperOrderExamples(t *testing.T) {
	// From Section 4: {00,011} ⊑ {000,011,1} and {00,10} ⋢ {000,011,1}.
	a := MustParse("00+011")
	b := MustParse("000+011+1")
	c := MustParse("00+10")
	if !a.Leq(b) {
		t.Errorf("%v ⊑ %v expected", a, b)
	}
	if c.Leq(b) {
		t.Errorf("%v ⋢ %v expected", c, b)
	}
}

func TestPaperJoinExample(t *testing.T) {
	// From Section 4: {00,011} ⊔ {000,01,1} = {000,011,1}.
	a := MustParse("00+011")
	b := MustParse("000+01+1")
	want := MustParse("000+011+1")
	if got := Join(a, b); !got.Equal(want) {
		t.Errorf("Join(%v, %v) = %v, want %v", a, b, got, want)
	}
}

func TestMaxOf(t *testing.T) {
	tests := []struct {
		in   []string
		want string
	}{
		{nil, "∅"},
		{[]string{""}, "ε"},
		{[]string{"", "0"}, "0"},
		{[]string{"0", "1", "01"}, "01+1"},
		{[]string{"0", "00", "000"}, "000"},
		{[]string{"0", "10", "1"}, "0+10"},
		{[]string{"0", "01", "00"}, "00+01"},
		{[]string{"11", "0", "11"}, "0+11"},
		{[]string{"", "0", "1", "00", "01", "10", "11"}, "00+01+10+11"},
	}
	for _, tt := range tests {
		bits := make([]bitstr.Bits, len(tt.in))
		for i, s := range tt.in {
			bits[i] = bitstr.Bits(s)
		}
		got := MaxOf(bits...)
		if got.String() != tt.want {
			t.Errorf("MaxOf(%v) = %v, want %v", tt.in, got, tt.want)
		}
		if err := got.Validate(); err != nil {
			t.Errorf("MaxOf(%v) invalid: %v", tt.in, err)
		}
	}
}

func TestMaxOfAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		n := randName(rng, 10, 6)
		if err := n.Validate(); err != nil {
			t.Fatalf("randName produced invalid name: %v", err)
		}
	}
}

func TestParseString(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"∅", "∅"},
		{"", "∅"},
		{"{}", "∅"},
		{"ε", "ε"},
		{"0", "0"},
		{"0+10", "0+10"},
		{"10 + 0", "0+10"},
		{"00+01+1", "00+01+1"},
	}
	for _, tt := range tests {
		n, err := Parse(tt.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.in, err)
			continue
		}
		if n.String() != tt.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tt.in, n, tt.want)
		}
	}
	if _, err := Parse("0+01"); err == nil {
		t.Error("Parse must reject non-antichains")
	}
	if _, err := Parse("0+x"); err == nil {
		t.Error("Parse must reject invalid bit strings")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		n := randName(rng, 8, 6)
		back, err := Parse(n.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", n.String(), err)
		}
		if !back.Equal(n) {
			t.Fatalf("round trip %v -> %v", n, back)
		}
	}
}

func TestLeqIsPartialOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		a, b, c := randName(rng, 6, 5), randName(rng, 6, 5), randName(rng, 6, 5)
		if !a.Leq(a) {
			t.Fatalf("reflexivity violated: %v", a)
		}
		if a.Leq(b) && b.Leq(a) && !a.Equal(b) {
			t.Fatalf("antisymmetry violated: %v, %v", a, b)
		}
		if a.Leq(b) && b.Leq(c) && !a.Leq(c) {
			t.Fatalf("transitivity violated: %v ⊑ %v ⊑ %v", a, b, c)
		}
	}
}

func TestEmptyIsBottom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		n := randName(rng, 6, 5)
		if !Empty().Leq(n) {
			t.Fatalf("∅ ⊑ %v expected", n)
		}
	}
}

func TestJoinIsLeastUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 400; i++ {
		a, b := randName(rng, 6, 5), randName(rng, 6, 5)
		j := Join(a, b)
		if err := j.Validate(); err != nil {
			t.Fatalf("Join(%v,%v) invalid: %v", a, b, err)
		}
		if !a.Leq(j) || !b.Leq(j) {
			t.Fatalf("Join(%v,%v)=%v is not an upper bound", a, b, j)
		}
		// Least: any other upper bound dominates j.
		u := randName(rng, 8, 5)
		if a.Leq(u) && b.Leq(u) && !j.Leq(u) {
			t.Fatalf("Join(%v,%v)=%v not least vs %v", a, b, j, u)
		}
	}
}

func TestJoinSemilatticeLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 400; i++ {
		a, b, c := randName(rng, 6, 5), randName(rng, 6, 5), randName(rng, 6, 5)
		if !Join(a, a).Equal(a) {
			t.Fatalf("idempotence violated: %v", a)
		}
		if !Join(a, b).Equal(Join(b, a)) {
			t.Fatalf("commutativity violated: %v, %v", a, b)
		}
		if !Join(Join(a, b), c).Equal(Join(a, Join(b, c))) {
			t.Fatalf("associativity violated: %v, %v, %v", a, b, c)
		}
		if !Join(a, Empty()).Equal(a) {
			t.Fatalf("∅ is not a unit: %v", a)
		}
	}
}

func TestJoinMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 600; i++ {
		a, b := randName(rng, 8, 6), randName(rng, 8, 6)
		fast := Join(a, b)
		naive := joinNaive(a, b)
		if !fast.Equal(naive) {
			t.Fatalf("Join(%v,%v): fast %v != naive %v", a, b, fast, naive)
		}
	}
}

func TestLeqMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 600; i++ {
		a, b := randName(rng, 8, 6), randName(rng, 8, 6)
		if a.Leq(b) != a.leqNaive(b) {
			t.Fatalf("Leq(%v,%v): fast %v != naive %v", a, b, a.Leq(b), a.leqNaive(b))
		}
	}
}

func TestCoversMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 600; i++ {
		n := randName(rng, 8, 6)
		b := randName(rng, 1, 6)
		var probe bitstr.Bits
		if b.Len() == 1 {
			probe, _ = b.At(0)
		}
		if n.Covers(probe) != n.coversNaive(probe) {
			t.Fatalf("Covers(%v, %v): fast %v != naive %v",
				n, probe, n.Covers(probe), n.coversNaive(probe))
		}
	}
}

func TestLeqEquivalentToDownsetInclusion(t *testing.T) {
	// n ⊑ m iff the down-set of n is included in the down-set of m.
	// Enumerate down-sets explicitly for small names.
	rng := rand.New(rand.NewSource(10))
	downset := func(n Name) map[bitstr.Bits]bool {
		d := make(map[bitstr.Bits]bool)
		for _, s := range n.Bits() {
			for i := 0; i <= s.Len(); i++ {
				d[s[:i]] = true
			}
		}
		return d
	}
	for i := 0; i < 300; i++ {
		a, b := randName(rng, 5, 5), randName(rng, 5, 5)
		da, db := downset(a), downset(b)
		included := true
		for s := range da {
			if !db[s] {
				included = false
				break
			}
		}
		if a.Leq(b) != included {
			t.Fatalf("Leq(%v,%v)=%v but down-set inclusion=%v", a, b, a.Leq(b), included)
		}
	}
}

func TestJoinEqualsDownsetUnion(t *testing.T) {
	// The join corresponds to union of down-sets: ↓(a⊔b) = ↓a ∪ ↓b.
	rng := rand.New(rand.NewSource(11))
	downset := func(n Name) map[bitstr.Bits]bool {
		d := make(map[bitstr.Bits]bool)
		for _, s := range n.Bits() {
			for i := 0; i <= s.Len(); i++ {
				d[s[:i]] = true
			}
		}
		return d
	}
	for i := 0; i < 300; i++ {
		a, b := randName(rng, 5, 5), randName(rng, 5, 5)
		j := Join(a, b)
		dj, da, db := downset(j), downset(a), downset(b)
		for s := range da {
			if !dj[s] {
				t.Fatalf("↓%v missing %v from ↓%v", j, s, a)
			}
		}
		for s := range db {
			if !dj[s] {
				t.Fatalf("↓%v missing %v from ↓%v", j, s, b)
			}
		}
		for s := range dj {
			if !da[s] && !db[s] {
				t.Fatalf("↓%v has extra %v", j, s)
			}
		}
	}
}

func TestAppendBitLifting(t *testing.T) {
	n := MustParse("0+10")
	if got := n.Append0().String(); got != "00+100" {
		t.Errorf("Append0 = %v, want 00+100", got)
	}
	if got := n.Append1().String(); got != "01+101" {
		t.Errorf("Append1 = %v, want 01+101", got)
	}
	// Forking ε: the seed id {ε} splits into {0} and {1}.
	if got := Epsilon().Append0().String(); got != "0" {
		t.Errorf("ε·0 = %v, want 0", got)
	}
}

func TestAppendPreservesValidityAndOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 300; i++ {
		n := randName(rng, 8, 5)
		n0, n1 := n.Append0(), n.Append1()
		if err := n0.Validate(); err != nil {
			t.Fatalf("Append0(%v) invalid: %v", n, err)
		}
		if err := n1.Validate(); err != nil {
			t.Fatalf("Append1(%v) invalid: %v", n, err)
		}
		if !n0.IncomparableTo(n1) && !n.IsEmpty() {
			t.Fatalf("forked halves of %v are comparable", n)
		}
		// Lifting reflects the order: n·0 ⊑ m·0 implies n ⊑ m. (The converse
		// fails in general: {1} ⊑ {11} but {10} ⋢ {110}.)
		m := randName(rng, 8, 5)
		if n.Append0().Leq(m.Append0()) && !n.Leq(m) {
			t.Fatalf("Append0 does not reflect ⊑ on %v, %v", n, m)
		}
		if n.Equal(m) && !n.Append1().Equal(m.Append1()) {
			t.Fatalf("Append1 does not preserve equality on %v", n)
		}
	}
}

func TestSiblingPairAndCollapse(t *testing.T) {
	n := MustParse("00+01+1")
	s, ok := n.SiblingPair()
	if !ok || s != bitstr.Bits("0") {
		t.Fatalf("SiblingPair(%v) = %v,%v want 0", n, s, ok)
	}
	c, ok := n.CollapseSiblings(s)
	if !ok || c.String() != "0+1" {
		t.Fatalf("CollapseSiblings = %v,%v want 0+1", c, ok)
	}
	// Collapsing again reaches {ε}.
	s2, ok := c.SiblingPair()
	if !ok || s2 != bitstr.Epsilon {
		t.Fatalf("SiblingPair(%v) = %v,%v want ε", c, s2, ok)
	}
	c2, ok := c.CollapseSiblings(s2)
	if !ok || c2.String() != "ε" {
		t.Fatalf("CollapseSiblings = %v,%v want ε", c2, ok)
	}
	if _, ok := c2.SiblingPair(); ok {
		t.Error("ε has no sibling pair")
	}
}

func TestSiblingPairNone(t *testing.T) {
	for _, s := range []string{"∅", "ε", "0", "0+10", "00+01", "000+01+1"} {
		n := MustParse(s)
		if s == "00+01" || s == "000+01+1" {
			continue // these do have pairs; covered elsewhere
		}
		if p, ok := n.SiblingPair(); ok && s != "00+01" {
			t.Errorf("SiblingPair(%v) unexpectedly found %v", n, p)
		}
	}
}

func TestCollapseRequiresBothChildren(t *testing.T) {
	n := MustParse("00+1")
	if _, ok := n.CollapseSiblings(bitstr.Bits("0")); ok {
		t.Error("collapse must require both 00 and 01")
	}
}

func TestCollapsePreservesDownsetModuloPair(t *testing.T) {
	// Collapsing {s0,s1}->s strictly shrinks the name w.r.t. ⊑:
	// result ⊑ original (s ⊑ s0 is false... rather s0,s1 ⋣ s but s ⊏ s0).
	// Per Section 6: for a rewriting (u,i) -> (u',i'), i' ⊑ i.
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		n := randName(rng, 10, 5)
		s, ok := n.SiblingPair()
		if !ok {
			continue
		}
		c, ok := n.CollapseSiblings(s)
		if !ok {
			t.Fatalf("collapse of found pair failed on %v", n)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("collapse produced invalid name: %v", err)
		}
		if !c.Leq(n) {
			t.Fatalf("collapse must shrink: %v ⋢ %v", c, n)
		}
	}
}

func TestAddRemove(t *testing.T) {
	n := MustParse("0+10")
	n2, ok := n.Add(bitstr.Bits("11"))
	if !ok || n2.String() != "0+10+11" {
		t.Fatalf("Add(11) = %v,%v", n2, ok)
	}
	if _, ok := n.Add(bitstr.Bits("1")); ok {
		t.Error("Add(1) must fail: 1 ⊑ 10")
	}
	n3, ok := n2.Remove(bitstr.Bits("10"))
	if !ok || n3.String() != "0+11" {
		t.Fatalf("Remove(10) = %v,%v", n3, ok)
	}
	if _, ok := n3.Remove(bitstr.Bits("10")); ok {
		t.Error("Remove of absent member must fail")
	}
}

func TestContains(t *testing.T) {
	n := MustParse("00+01+1")
	for _, s := range []string{"00", "01", "1"} {
		if !n.Contains(bitstr.Bits(s)) {
			t.Errorf("Contains(%s) = false", s)
		}
	}
	for _, s := range []string{"", "0", "10", "000"} {
		if n.Contains(bitstr.Bits(s)) {
			t.Errorf("Contains(%s) = true", s)
		}
	}
}

func TestCovers(t *testing.T) {
	n := MustParse("00+011+1")
	tests := []struct {
		probe string
		want  bool
	}{
		{"", true},   // ε ⊑ everything present
		{"0", true},  // 0 ⊑ 00
		{"00", true}, // member
		{"000", false},
		{"01", true},  // 01 ⊑ 011
		{"011", true}, // member
		{"0111", false},
		{"1", true},
		{"10", false},
		{"11", false},
	}
	for _, tt := range tests {
		if got := n.Covers(bitstr.Bits(tt.probe)); got != tt.want {
			t.Errorf("Covers(%q) = %v, want %v", tt.probe, got, tt.want)
		}
	}
	if Empty().Covers(bitstr.Epsilon) {
		t.Error("∅ covers nothing")
	}
}

func TestIncomparableTo(t *testing.T) {
	a := MustParse("00+010")
	b := MustParse("011+1")
	if !a.IncomparableTo(b) {
		t.Errorf("%v and %v should be incomparable", a, b)
	}
	c := MustParse("0110")
	if b.IncomparableTo(c) {
		t.Errorf("%v and %v share comparable strings", b, c)
	}
}

func TestSizeMeasures(t *testing.T) {
	n := MustParse("00+011+1")
	if n.TotalBits() != 6 {
		t.Errorf("TotalBits = %d, want 6", n.TotalBits())
	}
	if n.MaxDepth() != 3 {
		t.Errorf("MaxDepth = %d, want 3", n.MaxDepth())
	}
	if Empty().TotalBits() != 0 || Empty().MaxDepth() != 0 {
		t.Error("empty name must measure zero")
	}
}

func TestBitsReturnsCopy(t *testing.T) {
	n := MustParse("0+1")
	got := n.Bits()
	got[0] = bitstr.Bits("111")
	if n.String() != "0+1" {
		t.Error("mutating Bits() result must not affect the name")
	}
}

func TestAt(t *testing.T) {
	n := MustParse("0+10")
	if b, ok := n.At(0); !ok || b != bitstr.Bits("0") {
		t.Errorf("At(0) = %v,%v", b, ok)
	}
	if b, ok := n.At(1); !ok || b != bitstr.Bits("10") {
		t.Errorf("At(1) = %v,%v", b, ok)
	}
	if _, ok := n.At(2); ok {
		t.Error("At(2) must fail")
	}
	if _, ok := n.At(-1); ok {
		t.Error("At(-1) must fail")
	}
}

package name

import (
	"math/rand"
	"testing"
	"testing/quick"

	"versionstamp/internal/bitstr"
)

func TestMeetExamples(t *testing.T) {
	tests := []struct {
		a, b, want string
	}{
		{"∅", "0+1", "∅"},
		{"ε", "ε", "ε"},
		{"ε", "0", "ε"},
		{"0", "1", "ε"},   // disjoint halves share only ε
		{"00", "01", "0"}, // siblings share their parent
		{"00+011", "000+011+1", "00+011"},
		{"00+10", "000+011+1", "00+1"},
		{"0110", "0111", "011"},
	}
	for _, tt := range tests {
		got := Meet(MustParse(tt.a), MustParse(tt.b))
		if err := got.Validate(); err != nil {
			t.Fatalf("Meet(%s,%s) invalid: %v", tt.a, tt.b, err)
		}
		if got.String() != tt.want {
			t.Errorf("Meet(%s,%s) = %v, want %s", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestMeetIsGlb(t *testing.T) {
	if err := quick.Check(func(a, b, l genName) bool {
		m := Meet(a.Name, b.Name)
		if !m.Leq(a.Name) || !m.Leq(b.Name) {
			return false // lower bound
		}
		if l.Leq(a.Name) && l.Leq(b.Name) && !l.Leq(m) {
			return false // greatest
		}
		return true
	}, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestMeetLatticeLaws(t *testing.T) {
	if err := quick.Check(func(a, b, c genName) bool {
		return Meet(a.Name, a.Name).Equal(a.Name) && // idempotent
			Meet(a.Name, b.Name).Equal(Meet(b.Name, a.Name)) && // commutative
			Meet(Meet(a.Name, b.Name), c.Name).Equal(Meet(a.Name, Meet(b.Name, c.Name))) && // associative
			Meet(a.Name, Empty()).Equal(Empty()) // ∅ is the bottom/zero
	}, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestAbsorptionLaws(t *testing.T) {
	if err := quick.Check(func(a, b genName) bool {
		return Join(a.Name, Meet(a.Name, b.Name)).Equal(a.Name) &&
			Meet(a.Name, Join(a.Name, b.Name)).Equal(a.Name)
	}, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestDistributivity(t *testing.T) {
	// Down-set lattices are distributive.
	if err := quick.Check(func(a, b, c genName) bool {
		lhs := Meet(a.Name, Join(b.Name, c.Name))
		rhs := Join(Meet(a.Name, b.Name), Meet(a.Name, c.Name))
		return lhs.Equal(rhs)
	}, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestMeetLeqCharacterization(t *testing.T) {
	// a ⊑ b ⇔ a ⊓ b = a.
	if err := quick.Check(func(a, b genName) bool {
		return a.Leq(b.Name) == Meet(a.Name, b.Name).Equal(a.Name)
	}, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestMeetEqualsDownsetIntersection(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	downset := func(n Name) map[bitstr.Bits]bool {
		d := make(map[bitstr.Bits]bool)
		for _, s := range n.Bits() {
			for i := 0; i <= s.Len(); i++ {
				d[s[:i]] = true
			}
		}
		return d
	}
	for i := 0; i < 300; i++ {
		a, b := randName(rng, 5, 5), randName(rng, 5, 5)
		m := Meet(a, b)
		dm, da, db := downset(m), downset(a), downset(b)
		for s := range dm {
			if !da[s] || !db[s] {
				t.Fatalf("↓Meet(%v,%v) has extra %v", a, b, s)
			}
		}
		for s := range da {
			if db[s] && !dm[s] {
				t.Fatalf("↓Meet(%v,%v) missing %v", a, b, s)
			}
		}
	}
}

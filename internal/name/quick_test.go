package name

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"versionstamp/internal/bitstr"
)

// genName is a quick.Generator wrapper producing arbitrary valid names.
type genName struct{ Name }

var _ quick.Generator = genName{}

// Generate implements quick.Generator: an arbitrary antichain built by
// taking maximal elements of a random string set.
func (genName) Generate(rng *rand.Rand, size int) reflect.Value {
	if size > 12 {
		size = 12
	}
	n := rng.Intn(size + 1)
	bits := make([]bitstr.Bits, 0, n)
	for i := 0; i < n; i++ {
		l := rng.Intn(8)
		b := bitstr.Epsilon
		for j := 0; j < l; j++ {
			if rng.Intn(2) == 0 {
				b = b.Append0()
			} else {
				b = b.Append1()
			}
		}
		bits = append(bits, b)
	}
	return reflect.ValueOf(genName{MaxOf(bits...)})
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 400}
}

func TestQuickGeneratedNamesValid(t *testing.T) {
	if err := quick.Check(func(g genName) bool {
		return g.Validate() == nil
	}, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickPartialOrderLaws(t *testing.T) {
	if err := quick.Check(func(a, b, c genName) bool {
		if !a.Leq(a.Name) {
			return false // reflexivity
		}
		if a.Leq(b.Name) && b.Leq(a.Name) && !a.Equal(b.Name) {
			return false // antisymmetry
		}
		if a.Leq(b.Name) && b.Leq(c.Name) && !a.Leq(c.Name) {
			return false // transitivity
		}
		return true
	}, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinIsLub(t *testing.T) {
	if err := quick.Check(func(a, b, u genName) bool {
		j := Join(a.Name, b.Name)
		if !a.Leq(j) || !b.Leq(j) {
			return false // upper bound
		}
		if a.Leq(u.Name) && b.Leq(u.Name) && !j.Leq(u.Name) {
			return false // least
		}
		return true
	}, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickSemilatticeLaws(t *testing.T) {
	if err := quick.Check(func(a, b, c genName) bool {
		return Join(a.Name, a.Name).Equal(a.Name) && // idempotent
			Join(a.Name, b.Name).Equal(Join(b.Name, a.Name)) && // commutative
			Join(Join(a.Name, b.Name), c.Name).Equal(Join(a.Name, Join(b.Name, c.Name))) && // associative
			Join(a.Name, Empty()).Equal(a.Name) // unit
	}, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickLeqIffJoinAbsorbs(t *testing.T) {
	// In a join semilattice, a ⊑ b ⇔ a ⊔ b = b.
	if err := quick.Check(func(a, b genName) bool {
		return a.Leq(b.Name) == Join(a.Name, b.Name).Equal(b.Name)
	}, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	if err := quick.Check(func(a genName) bool {
		data, err := a.MarshalBinary()
		if err != nil {
			return false
		}
		var back Name
		if err := back.UnmarshalBinary(data); err != nil {
			return false
		}
		return back.Equal(a.Name)
	}, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickTextRoundTrip(t *testing.T) {
	if err := quick.Check(func(a genName) bool {
		back, err := Parse(a.String())
		return err == nil && back.Equal(a.Name)
	}, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickAppendReflectsOrder(t *testing.T) {
	if err := quick.Check(func(a, b genName) bool {
		// n·0 ⊑ m·0 ⇒ n ⊑ m, and equality is preserved by lifting.
		if a.Append0().Leq(b.Append0()) && !a.Leq(b.Name) {
			return false
		}
		if a.Equal(b.Name) && !a.Append1().Equal(b.Append1()) {
			return false
		}
		return true
	}, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickCollapseShrinks(t *testing.T) {
	if err := quick.Check(func(a genName) bool {
		s, ok := a.SiblingPair()
		if !ok {
			return true
		}
		c, ok := a.CollapseSiblings(s)
		return ok && c.Validate() == nil && c.Leq(a.Name) && c.Len() == a.Len()-1
	}, quickCfg()); err != nil {
		t.Error(err)
	}
}

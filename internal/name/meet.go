package name

import (
	"versionstamp/internal/bitstr"
)

// Meet returns n ⊓ m, the greatest lower bound of two names.
//
// Proposition 4.2's proof observes that N is isomorphic to the down-sets of
// binary strings ordered by inclusion — a complete lattice, not merely a
// join semilattice. The meet corresponds to intersection of down-sets: a
// string lies below both names exactly when it is a prefix of a member of
// each, so the meet's members are the maximal common prefixes
//
//	n ⊓ m = max{ cp(r, s) | r ∈ n, s ∈ m }
//
// where cp is the longest common prefix (cp(r,s) = r when r ⊑ s).
//
// The version-stamp operations need only the join; Meet exists because the
// lattice structure is useful to systems built on names — e.g. computing
// the identity fragment two replicas' knowledge has in common.
func Meet(n, m Name) Name {
	if n.IsEmpty() || m.IsEmpty() {
		return Empty()
	}
	candidates := make([]bitstr.Bits, 0, len(n.ss)*len(m.ss))
	for _, r := range n.ss {
		for _, s := range m.ss {
			candidates = append(candidates, r.CommonPrefix(s))
		}
	}
	return MaxOf(candidates...)
}

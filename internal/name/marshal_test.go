package name

import (
	"bytes"
	"encoding"
	"math/rand"
	"testing"
)

var (
	_ encoding.BinaryMarshaler   = Name{}
	_ encoding.BinaryUnmarshaler = (*Name)(nil)
	_ encoding.TextMarshaler     = Name{}
	_ encoding.TextUnmarshaler   = (*Name)(nil)
)

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for i := 0; i < 500; i++ {
		n := randName(rng, 10, 16)
		data, err := n.MarshalBinary()
		if err != nil {
			t.Fatalf("MarshalBinary(%v): %v", n, err)
		}
		if len(data) != n.EncodedSize() {
			t.Fatalf("EncodedSize(%v) = %d, actual %d", n, n.EncodedSize(), len(data))
		}
		var back Name
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("UnmarshalBinary(%v): %v", n, err)
		}
		if !back.Equal(n) {
			t.Fatalf("round trip %v -> %v", n, back)
		}
	}
}

func TestBinaryCanonical(t *testing.T) {
	// Equal names (however constructed) encode identically.
	a := MustParse("0+10+111")
	b := MustParse("111 + 0 + 10")
	da, _ := a.MarshalBinary()
	db, _ := b.MarshalBinary()
	if !bytes.Equal(da, db) {
		t.Errorf("equal names encoded differently: %x vs %x", da, db)
	}
}

func TestBinaryKnownEncodings(t *testing.T) {
	tests := []struct {
		name string
		want []byte
	}{
		{"∅", []byte{0x00}},
		{"ε", []byte{0x01, 0x00}},
		{"1", []byte{0x01, 0x01, 0x80}},
		{"0+1", []byte{0x02, 0x01, 0x00, 0x01, 0x80}},
		{"01+10", []byte{0x02, 0x02, 0x40, 0x02, 0x80}},
	}
	for _, tt := range tests {
		got, _ := MustParse(tt.name).MarshalBinary()
		if !bytes.Equal(got, tt.want) {
			t.Errorf("encode(%s) = %x, want %x", tt.name, got, tt.want)
		}
	}
}

func TestDecodeBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,                // empty
		{0x05},             // count=5 then truncated
		{0x01, 0x09, 0xff}, // bitLen=9 needs 2 bytes, only 1
		{0x01},             // count=1 then truncated
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, // huge count
		{0x02, 0x01, 0x00, 0x02, 0x00},                               // {0, 00}: not an antichain
		{0x02, 0x01, 0x00, 0x01, 0x00},                               // {0, 0}: duplicate
	}
	for _, data := range cases {
		if _, _, err := DecodeBinary(data); err == nil {
			t.Errorf("DecodeBinary(%x) accepted garbage", data)
		}
	}
}

func TestUnmarshalBinaryRejectsTrailing(t *testing.T) {
	data, _ := MustParse("0+1").MarshalBinary()
	data = append(data, 0xAA)
	var n Name
	if err := n.UnmarshalBinary(data); err == nil {
		t.Error("UnmarshalBinary must reject trailing bytes")
	}
}

func TestDecodeBinaryStream(t *testing.T) {
	// Several names back to back decode sequentially via DecodeBinary.
	names := []Name{MustParse("∅"), MustParse("ε"), MustParse("00+01+1"), MustParse("101")}
	var buf []byte
	for _, n := range names {
		buf = n.AppendBinary(buf)
	}
	off := 0
	for i, want := range names {
		got, used, err := DecodeBinary(buf[off:])
		if err != nil {
			t.Fatalf("decode #%d: %v", i, err)
		}
		if !got.Equal(want) {
			t.Fatalf("decode #%d = %v, want %v", i, got, want)
		}
		off += used
	}
	if off != len(buf) {
		t.Fatalf("stream not fully consumed: %d of %d", off, len(buf))
	}
}

func TestTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 200; i++ {
		n := randName(rng, 8, 8)
		text, err := n.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText: %v", err)
		}
		var back Name
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("UnmarshalText(%s): %v", text, err)
		}
		if !back.Equal(n) {
			t.Fatalf("text round trip %v -> %v", n, back)
		}
	}
}

func TestEncodedSizeCompact(t *testing.T) {
	// A long string packs 8 bits per byte.
	long := MustParse("0101010101010101") // 16 bits
	if got := long.EncodedSize(); got != 1+1+2 {
		t.Errorf("EncodedSize(16-bit string) = %d, want 4", got)
	}
}

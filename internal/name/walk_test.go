package name

import (
	"testing"
	"testing/quick"

	"versionstamp/internal/bitstr"
)

// Differential tests for the allocation-free comparison walks against the
// retained specification-level implementations (leqNaive, coversNaive,
// joinNaive). The table-driven cases in name_test.go cover hand-picked
// shapes; these drive randomized and fuzzed inputs through both
// implementations and additionally pin the fast paths' allocation budget
// to zero, which is what the interned stamp kernel builds on.

// TestQuickWalksAgainstNaive: on arbitrary generated names, the binary-search
// walks and the dominance-reusing Join agree with the quadratic reference
// implementations.
func TestQuickWalksAgainstNaive(t *testing.T) {
	if err := quick.Check(func(a, b genName, raw []byte) bool {
		if a.Leq(b.Name) != a.leqNaive(b.Name) {
			return false
		}
		probe := probeFrom(raw)
		if a.Covers(probe) != a.coversNaive(probe) {
			return false
		}
		fast := Join(a.Name, b.Name)
		naive := joinNaive(a.Name, b.Name)
		return fast.Equal(naive) && fast.Validate() == nil
	}, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestJoinDominanceSharing: when one operand contains the other, Join must
// return the dominating name unchanged (the allocation-free steady state)
// and still agree with the naive construction.
func TestJoinDominanceSharing(t *testing.T) {
	if err := quick.Check(func(a, b genName) bool {
		j := Join(a.Name, b.Name)
		if a.Leq(b.Name) && !j.Equal(b.Name) {
			return false
		}
		if b.Leq(a.Name) && !b.Leq(j) {
			return false
		}
		return j.Equal(joinNaive(a.Name, b.Name))
	}, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestWalksAllocationFree pins the hot walks to zero allocations: Covers,
// Leq, and Join of names where one side dominates. These are the per-key
// operations of every digest comparison, so a regression here silently
// multiplies by millions of keys.
func TestWalksAllocationFree(t *testing.T) {
	n := MustParse("00+010+0110+10+111")
	m := MustParse("001+0100+01101+101+1110")
	probe := bitstr.Bits("0110")
	if a := testing.AllocsPerRun(200, func() { _ = n.Covers(probe) }); a != 0 {
		t.Errorf("Covers allocates %.1f/op, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() { _ = n.Leq(m) }); a != 0 {
		t.Errorf("Leq allocates %.1f/op, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() { _ = Join(n, n) }); a != 0 {
		t.Errorf("Join of equal names allocates %.1f/op, want 0", a)
	}
}

// FuzzWalksAgainstNaive derives two names and a probe string from fuzz
// bytes and cross-checks every walk against its reference implementation.
// Run with `go test -fuzz=FuzzWalksAgainstNaive ./internal/name` for a full
// session; the seed corpus runs on every `go test`.
func FuzzWalksAgainstNaive(f *testing.F) {
	f.Add([]byte{}, []byte{}, []byte{})
	f.Add([]byte{0x00}, []byte{0xFF}, []byte{0x0A})
	f.Add([]byte{1, 2, 3, 4}, []byte{4, 3, 2, 1}, []byte{7})
	f.Add([]byte{0xAA, 0x55, 0x12}, []byte{0x55, 0xAA}, []byte{0xF0, 0x0F})
	f.Fuzz(func(t *testing.T, ra, rb, rp []byte) {
		a, b := nameFrom(ra), nameFrom(rb)
		probe := probeFrom(rp)
		if got, want := a.Leq(b), a.leqNaive(b); got != want {
			t.Fatalf("Leq(%v, %v) = %v, naive %v", a, b, got, want)
		}
		if got, want := a.Covers(probe), a.coversNaive(probe); got != want {
			t.Fatalf("Covers(%v, %v) = %v, naive %v", a, probe, got, want)
		}
		fast, naive := Join(a, b), joinNaive(a, b)
		if !fast.Equal(naive) {
			t.Fatalf("Join(%v, %v) = %v, naive %v", a, b, fast, naive)
		}
		if err := fast.Validate(); err != nil {
			t.Fatalf("Join(%v, %v) produced invalid name: %v", a, b, err)
		}
	})
}

// nameFrom builds an arbitrary valid name from raw bytes: each byte yields
// one candidate string (3 length bits, 5 value bits) and MaxOf keeps the
// maximal ones.
func nameFrom(raw []byte) Name {
	bits := make([]bitstr.Bits, 0, len(raw))
	for _, c := range raw {
		l := int(c >> 5)
		b := bitstr.Epsilon
		for j := 0; j < l; j++ {
			if c&(1<<j) != 0 {
				b = b.Append1()
			} else {
				b = b.Append0()
			}
		}
		bits = append(bits, b)
	}
	return MaxOf(bits...)
}

// probeFrom builds an arbitrary probe string from raw bytes (one bit per
// byte, capped at 12).
func probeFrom(raw []byte) bitstr.Bits {
	b := bitstr.Epsilon
	for i, c := range raw {
		if i >= 12 {
			break
		}
		if c&1 != 0 {
			b = b.Append1()
		} else {
			b = b.Append0()
		}
	}
	return b
}

// Package core implements version stamps, the decentralized substitute for
// version vectors introduced by Almeida, Baquero and Fonte in "Version
// Stamps — Decentralized Version Vectors" (ICDCS 2002).
//
// A version stamp is a pair (u, i) of names (package name): the id component
// i identifies the element among all coexisting elements of a frontier, and
// the update component u records which updates are known. The three
// operations of the fork-join model are:
//
//	update: (u, i) -> (i, i)
//	fork:   (u, i) -> (u, i·0), (u, i·1)
//	join:   (ua, ia), (ub, ib) -> (ua ⊔ ub, ia ⊔ ib)
//
// Joins are followed by the reduction of Section 6, which repeatedly rewrites
// (u, {i…, s·0, s·1}) to (u', {i…, s}); reduction keeps stamp size
// proportional to the width of the current frontier rather than to the
// number of replicas ever created. JoinNoReduce gives the non-reducing model
// of Section 4 for experiments.
//
// No operation consults anything beyond the operand stamps: there are no
// counters, no globally unique identifiers and no naming protocol. Replicas
// can therefore be created and retired under arbitrary network partitions,
// which is the problem the paper solves.
//
// Comparing two stamps of the same frontier with Compare yields exactly the
// causal-history relation between the elements (paper Proposition 5.1 and
// Corollary 5.2): Equal (same updates seen), Before/After (one element is
// obsolete relative to the other), or Concurrent (mutually inconsistent,
// i.e. a conflict in optimistic-replication terms).
package core

import (
	"errors"
	"fmt"

	"versionstamp/internal/name"
	"versionstamp/internal/trie"
)

// ErrOverlappingIDs is returned by Join when the two stamps' id components
// are not mutually incomparable. Stamps drawn from the same frontier always
// have incomparable ids (Invariant I2); overlapping ids indicate misuse,
// such as joining a stamp with itself or with a stale copy of an ancestor.
var ErrOverlappingIDs = errors.New("core: join of stamps with overlapping ids")

// Stamp is a version stamp (u, i). The zero value is the stamp (∅, ∅), which
// is not a member of any reachable configuration; new histories start from
// Seed().
//
// Stamp values are immutable; operations return new stamps. Both components
// are held as hash-consed handles (trie.Interned): each distinct name exists
// once per process, so structural equality is pointer comparison, Update and
// Fork shuffle pointers instead of copying slices, and the wire encoding of
// a component is cached on its handle. See the "Performance model" section
// of the package versionstamp documentation.
type Stamp struct {
	// The zero-width func field makes Stamp non-comparable, as it was when
	// the components were slice-backed names: handle pointers are an
	// implementation detail (intern-table overflow yields unshared handles
	// for equal names), so == would silently report false negatives. Use
	// Equal.
	_ [0]func()

	u *trie.Interned // update component: which updates this element has seen
	i *trie.Interned // id component: this element's identity within the frontier
}

// epsilonHandle is the interned name {ε}, the component of every seed stamp.
var epsilonHandle = trie.Intern(name.Epsilon())

// Seed returns the stamp ({ε}, {ε}) of the initial configuration: a system
// with a single data element that owns "the whole" identity space.
func Seed() Stamp {
	return Stamp{u: epsilonHandle, i: epsilonHandle}
}

// New assembles a stamp from explicit components, validating them and
// Invariant I1 (u ⊑ i). It is intended for decoding and tests; normal use
// derives stamps exclusively through Seed, Update, Fork and Join.
//
// Validation happens before interning: the intern table is keyed by the
// canonical encoding, and admitting an ill-formed name would poison the
// shared record for its well-formed encoding.
func New(update, id name.Name) (Stamp, error) {
	if err := checkI1Names(update, id); err != nil {
		return Stamp{}, err
	}
	return Stamp{u: trie.Intern(update), i: trie.Intern(id)}, nil
}

// NewInterned assembles a stamp from already-interned components, validating
// Invariant I1. It is the allocation-free constructor decoders use once the
// components have been deduped against the intern table.
func NewInterned(update, id *trie.Interned) (Stamp, error) {
	if !update.Leq(id) {
		return Stamp{}, fmt.Errorf("core: I1 violated: u = %v ⋢ i = %v", update, id)
	}
	return Stamp{u: update, i: id}, nil
}

// MustNew is New but panics on error; intended for tests and examples.
func MustNew(update, id name.Name) Stamp {
	s, err := New(update, id)
	if err != nil {
		panic(err)
	}
	return s
}

// UpdateName returns the update component u.
func (s Stamp) UpdateName() name.Name { return s.u.Name() }

// IDName returns the id component i.
func (s Stamp) IDName() name.Name { return s.i.Name() }

// UpdateHandle returns the interned update component. Encoders use it to
// append the component's cached canonical bytes without re-walking anything.
func (s Stamp) UpdateHandle() *trie.Interned { return s.u }

// IDHandle returns the interned id component.
func (s Stamp) IDHandle() *trie.Interned { return s.i }

// IsZero reports whether s is the zero Stamp (∅, ∅), which does not occur in
// reachable configurations.
func (s Stamp) IsZero() bool { return s.u.IsEmpty() && s.i.IsEmpty() }

// Update records an update event: the id is copied into the update
// component, (u, i) -> (i, i). After an update, further updates leave the
// stamp unchanged until the frontier changes shape — information that cannot
// influence the comparison of coexisting elements is deliberately discarded.
func (s Stamp) Update() Stamp {
	return Stamp{u: s.i, i: s.i}
}

// Fork splits the element in two: (u, i) -> (u, i·0), (u, i·1). Both
// descendants know the same updates; their ids partition the ancestor's
// identity space, so they remain distinguishable anywhere in the frontier
// without any coordination. The appended ids are memoized on the interned
// record, so forking an id the process has forked before allocates nothing.
func (s Stamp) Fork() (Stamp, Stamp) {
	return Stamp{u: s.u, i: s.i.Append0()},
		Stamp{u: s.u, i: s.i.Append1()}
}

// ForkN forks s into n >= 1 stamps by repeated binary forking, breadth
// first, so the resulting ids are as shallow as possible.
func (s Stamp) ForkN(n int) []Stamp {
	if n <= 1 {
		return []Stamp{s}
	}
	out := []Stamp{s}
	for len(out) < n {
		next := out[0]
		out = out[1:]
		a, b := next.Fork()
		out = append(out, a, b)
	}
	return out
}

// Join merges two elements of a frontier into one:
//
//	(ua, ia), (ub, ib) -> (ua ⊔ ub, ia ⊔ ib)
//
// followed by reduction (Section 6). The update components merge, reflecting
// combined knowledge of past updates; the id components merge, and sibling
// id fragments {s·0, s·1} collapse back into s, adapting identity granularity
// to the narrowed frontier. A fork immediately followed by a join of both
// descendants restores the original stamp exactly.
func Join(a, b Stamp) (Stamp, error) {
	s, err := JoinNoReduce(a, b)
	if err != nil {
		return Stamp{}, err
	}
	return s.Reduce(), nil
}

// JoinNoReduce is Join without the reduction step: the non-reducing model of
// Definition 4.3, retained for the E5 ablation experiments and for tests of
// the reduction rule itself.
func JoinNoReduce(a, b Stamp) (Stamp, error) {
	if !a.i.IncomparableTo(b.i) {
		return Stamp{}, fmt.Errorf("%w: %v and %v", ErrOverlappingIDs, a.i, b.i)
	}
	// JoinInterned returns the dominating side's handle unchanged when one
	// operand contains the other — for equal update components (converged
	// copies) the join is free and preserves handle identity.
	return Stamp{
		u: trie.JoinInterned(a.u, b.u),
		i: trie.JoinInterned(a.i, b.i),
	}, nil
}

// Sync models the synchronization of two replicas, which the paper expresses
// as joining them and forking the result: both replicas survive, each knowing
// the union of updates seen by either.
func Sync(a, b Stamp) (Stamp, Stamp, error) {
	joined, err := Join(a, b)
	if err != nil {
		return Stamp{}, Stamp{}, err
	}
	sa, sb := joined.Fork()
	return sa, sb, nil
}

// Retire removes a replica from the system: in the fork-join model,
// retirement is joining the retiring stamp into any surviving replica and
// dropping the retiring one, returning the retiring replica's identity
// fragment (and update knowledge) to the survivor. It is Join under a name
// that documents the intent.
func Retire(survivor, retiring Stamp) (Stamp, error) {
	return Join(survivor, retiring)
}

// String renders the stamp in the paper's Figure 4 notation, e.g.
// "[1|0+1]" for the stamp (u = {1}, i = {0, 1}).
func (s Stamp) String() string {
	return "[" + s.u.String() + "|" + s.i.String() + "]"
}

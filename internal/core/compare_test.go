package core

import (
	"math/rand"
	"testing"
)

func TestOrderingString(t *testing.T) {
	tests := []struct {
		o    Ordering
		want string
	}{
		{Equal, "equal"},
		{Before, "before"},
		{After, "after"},
		{Concurrent, "concurrent"},
		{Ordering(0), "invalid"},
		{Ordering(99), "invalid"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("Ordering(%d).String() = %q, want %q", tt.o, got, tt.want)
		}
	}
}

func TestCompareBasic(t *testing.T) {
	a, b := Seed().Fork()
	if got := Compare(a, b); got != Equal {
		t.Errorf("fresh fork siblings: %v, want equal", got)
	}
	ua := a.Update()
	if got := Compare(ua, b); got != After {
		t.Errorf("updated vs stale: %v, want after", got)
	}
	if got := Compare(b, ua); got != Before {
		t.Errorf("stale vs updated: %v, want before", got)
	}
	ub := b.Update()
	if got := Compare(ua, ub); got != Concurrent {
		t.Errorf("independent updates: %v, want concurrent", got)
	}
}

func TestComparePredicatesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for seed := 0; seed < 10; seed++ {
		frontier := randomFrontier(t, rng, 50)
		for i := range frontier {
			for j := range frontier {
				a, b := frontier[i], frontier[j]
				o := Compare(a, b)
				if a.Equivalent(b) != (o == Equal) {
					t.Fatalf("Equivalent disagrees with Compare on %v, %v", a, b)
				}
				if a.ObsoleteRelativeTo(b) != (o == Before) {
					t.Fatalf("ObsoleteRelativeTo disagrees on %v, %v", a, b)
				}
				if a.Dominates(b) != (o == After) {
					t.Fatalf("Dominates disagrees on %v, %v", a, b)
				}
				if a.ConcurrentWith(b) != (o == Concurrent) {
					t.Fatalf("ConcurrentWith disagrees on %v, %v", a, b)
				}
				if a.Leq(b) != (o == Equal || o == Before) {
					t.Fatalf("Leq disagrees on %v, %v", a, b)
				}
			}
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for seed := 0; seed < 10; seed++ {
		frontier := randomFrontier(t, rng, 50)
		for i := range frontier {
			for j := range frontier {
				o1, o2 := Compare(frontier[i], frontier[j]), Compare(frontier[j], frontier[i])
				var want Ordering
				switch o1 {
				case Equal:
					want = Equal
				case Before:
					want = After
				case After:
					want = Before
				case Concurrent:
					want = Concurrent
				}
				if o2 != want {
					t.Fatalf("Compare not antisymmetric: %v/%v for %v, %v",
						o1, o2, frontier[i], frontier[j])
				}
			}
		}
	}
}

func TestCompareIsPreorderOnFrontier(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	frontier := randomFrontier(t, rng, 80)
	leq := func(a, b Stamp) bool { o := Compare(a, b); return o == Equal || o == Before }
	for i := range frontier {
		if !leq(frontier[i], frontier[i]) {
			t.Fatalf("reflexivity violated at %v", frontier[i])
		}
		for j := range frontier {
			for k := range frontier {
				if leq(frontier[i], frontier[j]) && leq(frontier[j], frontier[k]) &&
					!leq(frontier[i], frontier[k]) {
					t.Fatalf("transitivity violated: %v ≤ %v ≤ %v",
						frontier[i], frontier[j], frontier[k])
				}
			}
		}
	}
}

func TestEqualVsEquivalent(t *testing.T) {
	a, b := Seed().Fork()
	if !a.Equivalent(b) {
		t.Error("fork siblings are equivalent")
	}
	if a.Equal(b) {
		t.Error("fork siblings carry different ids: not Equal")
	}
	if !a.Equal(a) {
		t.Error("Equal must be reflexive")
	}
}

// TestFreshUpdateNeverDominated checks the scenario motivating Invariant I3
// (Section 4): if a ∥ b and an update occurs on a, then b ⊑ a' must not
// newly hold unless b ⊑ a already held.
func TestFreshUpdateNeverDominated(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for seed := 0; seed < 20; seed++ {
		frontier := randomFrontier(t, rng, 40)
		if len(frontier) < 2 {
			continue
		}
		i := rng.Intn(len(frontier))
		j := rng.Intn(len(frontier))
		if i == j {
			continue
		}
		before := Compare(frontier[j], frontier[i])
		after := Compare(frontier[j], frontier[i].Update())
		// j ⊑ update(i) requires j ⊑ i beforehand.
		if (after == Before || after == Equal) && !(before == Before || before == Equal) {
			t.Fatalf("update created spurious domination: before=%v after=%v", before, after)
		}
		// And the updated element must strictly dominate or stay concurrent;
		// it can never become dominated by j or merely equal unless j
		// already dominated it... the key guarantee: update(i) is never
		// obsolete relative to a concurrent j.
		if before == Concurrent && after != Concurrent {
			t.Fatalf("update changed concurrency with a third element: %v -> %v", before, after)
		}
	}
}

package core

import (
	"bytes"
	"encoding"
	"math/rand"
	"testing"
)

var (
	_ encoding.BinaryMarshaler   = Stamp{}
	_ encoding.BinaryUnmarshaler = (*Stamp)(nil)
	_ encoding.TextMarshaler     = Stamp{}
	_ encoding.TextUnmarshaler   = (*Stamp)(nil)
)

func TestParseExamples(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"[ε|ε]", "[ε|ε]"},
		{"[|ε]", "[∅|ε]"},
		{"[ 1 | 0+1 ]", "[1|0+1]"},
		{"[1|01+1]", "[1|01+1]"},
	}
	for _, tt := range tests {
		s, err := Parse(tt.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.in, err)
			continue
		}
		if s.String() != tt.want {
			t.Errorf("Parse(%q) = %v, want %v", tt.in, s, tt.want)
		}
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"",
		"1|0",
		"[1|0",
		"1|0]",
		"[1]",
		"[1|0|1]",
		"[x|0]",
		"[0+01|0+01]", // components not antichains
		"[1|0]",       // violates I1: {1} ⋢ {0}
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted invalid input", in)
		}
	}
}

func TestBinaryRoundTripStamp(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for seed := 0; seed < 10; seed++ {
		frontier := randomFrontier(t, rng, 60)
		for _, s := range frontier {
			data, err := s.MarshalBinary()
			if err != nil {
				t.Fatalf("MarshalBinary(%v): %v", s, err)
			}
			if len(data) != s.EncodedSize() {
				t.Fatalf("EncodedSize(%v) = %d, actual %d", s, s.EncodedSize(), len(data))
			}
			var back Stamp
			if err := back.UnmarshalBinary(data); err != nil {
				t.Fatalf("UnmarshalBinary(%v): %v", s, err)
			}
			if !back.Equal(s) {
				t.Fatalf("binary round trip %v -> %v", s, back)
			}
		}
	}
}

func TestBinaryCanonicalStamp(t *testing.T) {
	a := MustParse("[1|0+1]")
	b := MustParse("[ 1 | 1+0 ]")
	da, _ := a.MarshalBinary()
	db, _ := b.MarshalBinary()
	if !bytes.Equal(da, db) {
		t.Errorf("equal stamps encoded differently: %x vs %x", da, db)
	}
}

func TestTextRoundTripStamp(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	frontier := randomFrontier(t, rng, 60)
	for _, s := range frontier {
		text, err := s.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText: %v", err)
		}
		var back Stamp
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("UnmarshalText(%s): %v", text, err)
		}
		if !back.Equal(s) {
			t.Fatalf("text round trip %v -> %v", s, back)
		}
	}
}

func TestDecodeBinaryRejects(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x02},           // unknown format
		{formatV1},       // truncated update
		{formatV1, 0x01}, // truncated string header
		{formatV1, 0x00}, // missing id component
		{formatV1, 0x01, 0x01, 0x80, 0x01, 0x01, 0x00}, // u={1}, i={0}: I1 violated
	}
	for _, data := range cases {
		if _, _, err := DecodeBinary(data); err == nil {
			t.Errorf("DecodeBinary(%x) accepted invalid input", data)
		}
	}
}

func TestUnmarshalBinaryRejectsTrailingStamp(t *testing.T) {
	data, _ := Seed().MarshalBinary()
	data = append(data, 0x00)
	var s Stamp
	if err := s.UnmarshalBinary(data); err == nil {
		t.Error("trailing bytes must be rejected")
	}
}

func TestDecodeBinaryStreamStamps(t *testing.T) {
	stamps := []Stamp{Seed(), MustParse("[1|0+1]"), MustParse("[ε|00]")}
	var buf []byte
	for _, s := range stamps {
		buf = s.AppendBinary(buf)
	}
	off := 0
	for i, want := range stamps {
		got, used, err := DecodeBinary(buf[off:])
		if err != nil {
			t.Fatalf("decode #%d: %v", i, err)
		}
		if !got.Equal(want) {
			t.Fatalf("decode #%d = %v, want %v", i, got, want)
		}
		off += used
	}
	if off != len(buf) {
		t.Fatalf("stream not fully consumed")
	}
}

func TestSeedEncodedSize(t *testing.T) {
	// ({ε},{ε}) encodes to 1 (format) + 2 (count=1, len=0) * 2 = 5 bytes.
	if got := Seed().EncodedSize(); got != 5 {
		t.Errorf("Seed().EncodedSize() = %d, want 5", got)
	}
}

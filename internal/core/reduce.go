package core

import (
	"versionstamp/internal/bitstr"
	"versionstamp/internal/name"
	"versionstamp/internal/trie"
)

// Reduce applies the rewriting rule of Section 6 until it no longer applies,
// returning the unique normal form of the stamp:
//
//	(u, {i…, s·0, s·1}) -> (u', {i…, s})
//
//	u' = u \ {s·0, s·1} ∪ {s}   if s·0 ∈ u or s·1 ∈ u
//	u' = u                     otherwise
//
// Each rewriting strictly shrinks both components in the name order (u' ⊑ u,
// i' ⊑ i), the order is well-founded, and the rule is confluent, so the
// normal form exists and is unique. Reduction preserves Invariants I1–I3 and
// the order relation R between all frontier elements (proved in the paper);
// TestReducePreservesR re-checks this mechanically.
//
// Reduce is idempotent and is applied automatically by Join. An
// already-reduced stamp (the common case: most joins collapse nothing) is
// returned unchanged, handles intact, without allocating.
func (s Stamp) Reduce() Stamp {
	i := s.i.Name()
	if _, ok := i.SiblingPair(); !ok {
		return s
	}
	u := s.u.Name()
	for {
		parent, ok := i.SiblingPair()
		if !ok {
			return Stamp{u: trie.Intern(u), i: trie.Intern(i)}
		}
		u, i = rewriteOnce(u, i, parent)
	}
}

// IsReduced reports whether no rewriting applies to s (s is in normal form).
func (s Stamp) IsReduced() bool {
	_, ok := s.i.Name().SiblingPair()
	return !ok
}

// rewriteOnce applies a single rewriting step at the given parent string s,
// whose children s·0 and s·1 must both be present in id.
func rewriteOnce(u, id name.Name, s bitstr.Bits) (name.Name, name.Name) {
	newID, ok := id.CollapseSiblings(s)
	if !ok {
		// Caller guarantees the pair exists; treat a miss as a no-op so the
		// function stays total.
		return u, id
	}
	c0, c1 := s.Append0(), s.Append1()
	if !u.Contains(c0) && !u.Contains(c1) {
		return u, newID
	}
	newU := u
	if removed, ok := newU.Remove(c0); ok {
		newU = removed
	}
	if removed, ok := newU.Remove(c1); ok {
		newU = removed
	}
	added, ok := newU.Add(s)
	if !ok {
		// Unreachable for stamps satisfying I1 (the paper proves u' is an
		// antichain); fall back to the down-set-preserving construction so
		// corrupted inputs still yield a well-formed name.
		added = name.MaxOf(append(newU.Bits(), s)...)
	}
	return added, newID
}

// ReduceSteps reports the number of rewriting steps Reduce performs to reach
// the normal form; used by the E5 experiments to report reduction
// effectiveness.
func (s Stamp) ReduceSteps() int {
	u, i := s.u.Name(), s.i.Name()
	steps := 0
	for {
		parent, ok := i.SiblingPair()
		if !ok {
			return steps
		}
		u, i = rewriteOnce(u, i, parent)
		steps++
	}
}

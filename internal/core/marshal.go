package core

import (
	"errors"
	"fmt"
	"strings"

	"versionstamp/internal/name"
)

// Binary wire format for a stamp: a format byte (currently formatV1)
// followed by the canonical encodings of the update and id components.
// The format is canonical: equal stamps encode to identical bytes.

// formatV1 identifies the current stamp wire format.
const formatV1 = 0x01

// errBadFormat is returned when decoding input with an unknown format byte.
var errBadFormat = errors.New("core: unknown stamp wire format")

// AppendBinary appends the canonical binary encoding of s to dst.
func (s Stamp) AppendBinary(dst []byte) []byte {
	dst = append(dst, formatV1)
	dst = s.u.Name().AppendBinary(dst)
	dst = s.i.Name().AppendBinary(dst)
	return dst
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s Stamp) MarshalBinary() ([]byte, error) {
	return s.AppendBinary(nil), nil
}

// EncodedSize returns the exact length in bytes of the binary encoding,
// the size measure reported by the E5/E6 space experiments.
func (s Stamp) EncodedSize() int {
	return 1 + s.u.Name().EncodedSize() + s.i.Name().EncodedSize()
}

// DecodeBinary reads one stamp from the front of src, returning the number
// of bytes consumed. The decoded stamp is validated against Invariant I1.
func DecodeBinary(src []byte) (Stamp, int, error) {
	if len(src) == 0 {
		return Stamp{}, 0, errors.New("core: empty input")
	}
	if src[0] != formatV1 {
		return Stamp{}, 0, fmt.Errorf("%w: 0x%02x", errBadFormat, src[0])
	}
	off := 1
	u, used, err := name.DecodeBinary(src[off:])
	if err != nil {
		return Stamp{}, 0, fmt.Errorf("core: update component: %w", err)
	}
	off += used
	i, used, err := name.DecodeBinary(src[off:])
	if err != nil {
		return Stamp{}, 0, fmt.Errorf("core: id component: %w", err)
	}
	off += used
	s, err := New(u, i)
	if err != nil {
		return Stamp{}, 0, err
	}
	return s, off, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The input must
// contain exactly one encoded stamp.
func (s *Stamp) UnmarshalBinary(data []byte) error {
	decoded, used, err := DecodeBinary(data)
	if err != nil {
		return err
	}
	if used != len(data) {
		return fmt.Errorf("core: %d trailing bytes after encoded stamp", len(data)-used)
	}
	*s = decoded
	return nil
}

// MarshalText implements encoding.TextMarshaler using the paper's Figure 4
// notation, e.g. "[1|0+1]".
func (s Stamp) MarshalText() ([]byte, error) {
	return []byte(s.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *Stamp) UnmarshalText(text []byte) error {
	decoded, err := Parse(string(text))
	if err != nil {
		return err
	}
	*s = decoded
	return nil
}

// Parse reads a stamp in the paper's notation "[u|i]", e.g. "[1|0+1]" or
// "[ε|ε]". Whitespace around components is ignored. The parsed stamp must
// satisfy Invariant I1.
func Parse(text string) (Stamp, error) {
	t := strings.TrimSpace(text)
	if len(t) < 2 || t[0] != '[' || t[len(t)-1] != ']' {
		return Stamp{}, fmt.Errorf("core: parse %q: want \"[u|i]\"", text)
	}
	body := t[1 : len(t)-1]
	parts := strings.Split(body, "|")
	if len(parts) != 2 {
		return Stamp{}, fmt.Errorf("core: parse %q: want exactly one '|'", text)
	}
	u, err := name.Parse(parts[0])
	if err != nil {
		return Stamp{}, fmt.Errorf("core: parse update component: %w", err)
	}
	i, err := name.Parse(parts[1])
	if err != nil {
		return Stamp{}, fmt.Errorf("core: parse id component: %w", err)
	}
	return New(u, i)
}

// MustParse is Parse but panics on error; intended for tests and examples.
func MustParse(text string) Stamp {
	s, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return s
}

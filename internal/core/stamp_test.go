package core

import (
	"math/rand"
	"testing"

	"versionstamp/internal/name"
)

func TestSeed(t *testing.T) {
	s := Seed()
	if s.String() != "[ε|ε]" {
		t.Errorf("Seed() = %v, want [ε|ε]", s)
	}
	if err := CheckI1(s); err != nil {
		t.Errorf("Seed violates I1: %v", err)
	}
	if s.IsZero() {
		t.Error("Seed must not be the zero stamp")
	}
	if !(Stamp{}).IsZero() {
		t.Error("zero Stamp must report IsZero")
	}
}

func TestNewValidatesI1(t *testing.T) {
	// u = {0} ⋢ i = {1}.
	if _, err := New(name.MustParse("0"), name.MustParse("1")); err == nil {
		t.Error("New must reject stamps violating I1")
	}
	s, err := New(name.MustParse("0"), name.MustParse("01"))
	if err != nil {
		t.Fatalf("New({0},{01}): %v", err)
	}
	if s.String() != "[0|01]" {
		t.Errorf("New = %v", s)
	}
}

func TestUpdateCopiesIDIntoUpdate(t *testing.T) {
	s := MustParse("[ε|01]")
	got := s.Update()
	if got.String() != "[01|01]" {
		t.Errorf("Update(%v) = %v, want [01|01]", s, got)
	}
}

func TestUpdateIdempotentOnStamp(t *testing.T) {
	// "after an update, subsequent ones do not affect a version stamp"
	// (paper Section 3).
	s := Seed().Update()
	if !s.Equal(Seed()) {
		t.Errorf("update of the sole element changed the stamp: %v", s)
	}
	s2 := MustParse("[ε|01]").Update()
	if !s2.Update().Equal(s2) {
		t.Errorf("second update changed the stamp: %v -> %v", s2, s2.Update())
	}
}

func TestForkAppendsDigits(t *testing.T) {
	a, b := Seed().Fork()
	if a.String() != "[ε|0]" || b.String() != "[ε|1]" {
		t.Errorf("Fork(seed) = %v, %v", a, b)
	}
	c, d := MustParse("[1|0+1]").Fork()
	if c.String() != "[1|00+10]" || d.String() != "[1|01+11]" {
		t.Errorf("Fork([1|0+1]) = %v, %v", c, d)
	}
}

func TestForkThenJoinRestoresOriginal(t *testing.T) {
	// "A fork followed by a join of the resulting elements should result in
	// an element with the original id" (paper Section 3). With reduction it
	// restores the whole stamp.
	rng := rand.New(rand.NewSource(1))
	frontier := randomFrontier(t, rng, 40)
	for _, s := range frontier {
		a, b := s.Fork()
		back, err := Join(a, b)
		if err != nil {
			t.Fatalf("Join(Fork(%v)): %v", s, err)
		}
		if !back.Equal(s.Reduce()) {
			t.Errorf("Join(Fork(%v)) = %v, want %v", s, back, s.Reduce())
		}
	}
}

func TestForkN(t *testing.T) {
	for n := 1; n <= 9; n++ {
		stamps := Seed().ForkN(n)
		if len(stamps) != n {
			t.Fatalf("ForkN(%d) produced %d stamps", n, len(stamps))
		}
		if err := CheckFrontier(stamps); err != nil {
			t.Fatalf("ForkN(%d) frontier invalid: %v", n, err)
		}
		// Joining everything back restores the seed.
		acc := stamps[0]
		var err error
		for _, s := range stamps[1:] {
			acc, err = Join(acc, s)
			if err != nil {
				t.Fatalf("re-join: %v", err)
			}
		}
		if !acc.Equal(Seed()) {
			t.Fatalf("re-joined ForkN(%d) = %v, want seed", n, acc)
		}
	}
}

func TestJoinRejectsOverlappingIDs(t *testing.T) {
	s := Seed()
	if _, err := Join(s, s); err == nil {
		t.Error("joining a stamp with itself must fail")
	}
	a, _ := s.Fork()
	aa, _ := a.Fork()
	if _, err := Join(a, aa); err == nil {
		t.Error("joining a stamp with its own descendant must fail")
	}
}

func TestJoinMergesKnowledge(t *testing.T) {
	a, b := Seed().Fork() // [ε|0], [ε|1]
	a = a.Update()        // [0|0]
	b = b.Update()        // [1|1]
	j, err := Join(a, b)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	// u = {0}⊔{1} = {0,1}, i = {0,1}; both reduce to ε.
	if !j.Equal(Seed()) {
		t.Errorf("Join([0|0],[1|1]) = %v, want [ε|ε]", j)
	}
}

func TestSync(t *testing.T) {
	a, b := Seed().Fork()
	a = a.Update() // a has an update b hasn't seen
	if Compare(b, a) != Before {
		t.Fatalf("setup: b should be before a")
	}
	sa, sb, err := Sync(a, b)
	if err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if Compare(sa, sb) != Equal {
		t.Errorf("after sync, replicas must be equivalent: %v vs %v", sa, sb)
	}
	if err := CheckFrontier([]Stamp{sa, sb}); err != nil {
		t.Errorf("post-sync frontier invalid: %v", err)
	}
}

func TestRetire(t *testing.T) {
	a, b := Seed().Fork()
	b = b.Update()
	survivor, err := Retire(a, b)
	if err != nil {
		t.Fatalf("Retire: %v", err)
	}
	// The survivor owns the whole id space again and knows b's update.
	if survivor.String() != "[ε|ε]" {
		t.Errorf("Retire = %v, want [ε|ε]", survivor)
	}
}

// TestFigure4 reproduces every version stamp of Figure 4 of the paper, which
// annotates the execution of Figure 2. The element names follow Figure 2:
//
//	a1 -update-> a2, fork(a2) -> (b1, c1)
//	fork(b1) -> (d1, e1)
//	c1 -update-> c2 -update-> c3
//	f1 = join(e1, c3)
//	g1 = join(d1, f1)         (shown unreduced in the figure)
//	h1 = join(b1, c2)         (the alternative evolution of b1, [1|0+1])
func TestFigure4(t *testing.T) {
	a1 := Seed()
	if got := a1.String(); got != "[ε|ε]" {
		t.Fatalf("a1 = %v, want [ε|ε]", got)
	}
	a2 := a1.Update()
	if got := a2.String(); got != "[ε|ε]" {
		t.Fatalf("a2 = %v, want [ε|ε]", got)
	}
	b1, c1 := a2.Fork()
	if b1.String() != "[ε|0]" || c1.String() != "[ε|1]" {
		t.Fatalf("fork(a2) = %v, %v, want [ε|0], [ε|1]", b1, c1)
	}
	d1, e1 := b1.Fork()
	if d1.String() != "[ε|00]" || e1.String() != "[ε|01]" {
		t.Fatalf("fork(b1) = %v, %v, want [ε|00], [ε|01]", d1, e1)
	}
	c2 := c1.Update()
	if c2.String() != "[1|1]" {
		t.Fatalf("c2 = %v, want [1|1]", c2)
	}
	c3 := c2.Update()
	if c3.String() != "[1|1]" {
		t.Fatalf("c3 = %v, want [1|1] (second update has no effect)", c3)
	}
	f1, err := Join(e1, c3)
	if err != nil {
		t.Fatalf("join(e1,c3): %v", err)
	}
	if f1.String() != "[1|01+1]" {
		t.Fatalf("f1 = %v, want [1|01+1]", f1)
	}
	// The figure displays g1 before simplification.
	g1, err := JoinNoReduce(d1, f1)
	if err != nil {
		t.Fatalf("join(d1,f1): %v", err)
	}
	if g1.String() != "[1|00+01+1]" {
		t.Fatalf("g1 = %v, want [1|00+01+1]", g1)
	}
	// The alternative evolution of b1 shown in the figure: joining b1
	// directly with the updated c element yields [1|0+1].
	h1, err := JoinNoReduce(b1, c2)
	if err != nil {
		t.Fatalf("join(b1,c2): %v", err)
	}
	if h1.String() != "[1|0+1]" {
		t.Fatalf("h1 = %v, want [1|0+1]", h1)
	}
	// Under the reducing model both final joins collapse to the seed: the
	// joined element is alone in its frontier and owns the whole space.
	if got := g1.Reduce(); !got.Equal(Seed()) {
		t.Errorf("reduce(g1) = %v, want [ε|ε]", got)
	}
	if got := h1.Reduce(); !got.Equal(Seed()) {
		t.Errorf("reduce(h1) = %v, want [ε|ε]", got)
	}

	// Frontier sanity at the widest point: {d1, e1, c3}.
	if err := CheckFrontier([]Stamp{d1, e1, c3}); err != nil {
		t.Errorf("frontier {d1,e1,c3} invalid: %v", err)
	}
	// Ordering facts visible in the figure: c3 has seen updates (on the c
	// line) that d1 has not, while d1 has seen none of its own, so d1 is
	// obsolete relative to c3.
	if got := Compare(d1, c3); got != Before {
		t.Errorf("Compare(d1, c3) = %v, want before", got)
	}
	// f1 dominates e1's knowledge: f1 knows c's update.
	if got := Compare(e1, f1); got != Before {
		t.Errorf("Compare(e1, f1) = %v, want before", got)
	}
}

// TestPaperFrontierQueries checks the Section 1.2 discussion around the two
// possible frontiers through element c2 ("•2"): {b1, c2} and {d1, e1, c2}.
func TestPaperFrontierQueries(t *testing.T) {
	a2 := Seed().Update()
	b1, c1 := a2.Fork()
	c2 := c1.Update()
	// Frontier 1: {b1, c2}.
	if err := CheckFrontier([]Stamp{b1, c2}); err != nil {
		t.Fatalf("frontier {b1,c2}: %v", err)
	}
	if got := Compare(b1, c2); got != Before {
		t.Errorf("b1 vs c2 = %v, want before (c2 saw an update b1 did not)", got)
	}
	// Frontier 2: {d1, e1, c2} after b1's bifurcation.
	d1, e1 := b1.Fork()
	if err := CheckFrontier([]Stamp{d1, e1, c2}); err != nil {
		t.Fatalf("frontier {d1,e1,c2}: %v", err)
	}
	if got := Compare(d1, e1); got != Equal {
		t.Errorf("d1 vs e1 = %v, want equal (same updates seen)", got)
	}
}

// randomFrontier builds a random reachable frontier by applying random
// update/fork/join operations starting from the seed. It checks the
// configuration invariants at every step, turning the paper's inductive
// proofs into executable checks.
func randomFrontier(t *testing.T, rng *rand.Rand, ops int) []Stamp {
	t.Helper()
	frontier := []Stamp{Seed()}
	for k := 0; k < ops; k++ {
		switch op := rng.Intn(3); {
		case op == 0: // update
			i := rng.Intn(len(frontier))
			frontier[i] = frontier[i].Update()
		case op == 1 || len(frontier) == 1: // fork
			i := rng.Intn(len(frontier))
			a, b := frontier[i].Fork()
			frontier[i] = a
			frontier = append(frontier, b)
		default: // join
			i := rng.Intn(len(frontier))
			j := rng.Intn(len(frontier))
			if i == j {
				continue
			}
			joined, err := Join(frontier[i], frontier[j])
			if err != nil {
				t.Fatalf("join %v ⊔ %v: %v", frontier[i], frontier[j], err)
			}
			frontier[i] = joined
			frontier = append(frontier[:j], frontier[j+1:]...)
		}
		if err := CheckFrontier(frontier); err != nil {
			t.Fatalf("invariant violated after %d ops: %v", k+1, err)
		}
	}
	return frontier
}

func TestInvariantsUnderRandomTraces(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		randomFrontier(t, rng, 120)
	}
}

func TestInvariantsUnderRandomTracesNoReduce(t *testing.T) {
	if testing.Short() {
		// ~10s: unreduced stamps grow large. The reducing variant above
		// covers the same invariants in short mode.
		t.Skip("skipping unreduced random traces in -short mode")
	}
	// The non-reducing model satisfies the same invariants.
	for seed := int64(100); seed < 110; seed++ {
		rng := rand.New(rand.NewSource(seed))
		frontier := []Stamp{Seed()}
		for k := 0; k < 100; k++ {
			switch op := rng.Intn(3); {
			case op == 0:
				i := rng.Intn(len(frontier))
				frontier[i] = frontier[i].Update()
			case op == 1 || len(frontier) == 1:
				i := rng.Intn(len(frontier))
				a, b := frontier[i].Fork()
				frontier[i] = a
				frontier = append(frontier, b)
			default:
				i, j := rng.Intn(len(frontier)), rng.Intn(len(frontier))
				if i == j {
					continue
				}
				joined, err := JoinNoReduce(frontier[i], frontier[j])
				if err != nil {
					t.Fatalf("join: %v", err)
				}
				frontier[i] = joined
				frontier = append(frontier[:j], frontier[j+1:]...)
			}
			if err := CheckFrontier(frontier); err != nil {
				t.Fatalf("seed %d: invariant violated after %d ops: %v", seed, k+1, err)
			}
		}
	}
}

func TestSingleElementFrontierReducesToSeed(t *testing.T) {
	// Whenever the frontier narrows back to one element, reduction restores
	// ({ε},{ε}) regardless of history.
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		frontier := randomFrontier(t, rng, 60)
		acc := frontier[0]
		var err error
		for _, s := range frontier[1:] {
			acc, err = Join(acc, s)
			if err != nil {
				t.Fatalf("join-all: %v", err)
			}
		}
		if !acc.Equal(Seed()) {
			t.Fatalf("seed %d: join-all = %v, want [ε|ε]", seed, acc)
		}
	}
}

func TestAccessors(t *testing.T) {
	s := MustParse("[1|0+1]")
	if s.UpdateName().String() != "1" {
		t.Errorf("UpdateName = %v", s.UpdateName())
	}
	if s.IDName().String() != "0+1" {
		t.Errorf("IDName = %v", s.IDName())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew must panic on invalid input")
		}
	}()
	MustNew(name.MustParse("0"), name.MustParse("1"))
}

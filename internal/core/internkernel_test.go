package core

import (
	"math/rand"
	"sync"
	"testing"
)

// Tests for the interned stamp kernel: the handle fast paths and the
// comparison caches must be invisible — every outcome identical to the
// specification-level comparison over the underlying names — and the hot
// operations must not allocate.

// naiveCompare relates two stamps purely at the name level, bypassing every
// handle fast path and cache: the ground truth the interned kernel must
// reproduce.
func naiveCompare(a, b Stamp) Ordering {
	nu, mu := a.UpdateName(), b.UpdateName()
	ab, ba := nu.Leq(mu), mu.Leq(nu)
	switch {
	case ab && ba:
		return Equal
	case ab:
		return Before
	case ba:
		return After
	default:
		return Concurrent
	}
}

// randomTrace replays a random fork/update/join trace, returning every
// intermediate stamp (not just the final frontier) so comparisons cover
// ancestors and stale copies too.
func randomTrace(rng *rand.Rand, ops int) []Stamp {
	frontier := []Stamp{Seed()}
	all := []Stamp{Seed()}
	for k := 0; k < ops; k++ {
		switch op := rng.Intn(3); {
		case op == 0:
			i := rng.Intn(len(frontier))
			frontier[i] = frontier[i].Update()
			all = append(all, frontier[i])
		case op == 1 || len(frontier) == 1:
			i := rng.Intn(len(frontier))
			a, b := frontier[i].Fork()
			frontier[i] = a
			frontier = append(frontier, b)
			all = append(all, a, b)
		default:
			i, j := rng.Intn(len(frontier)), rng.Intn(len(frontier))
			if i == j {
				continue
			}
			joined, err := Join(frontier[i], frontier[j])
			if err != nil {
				continue
			}
			frontier[i] = joined
			frontier = append(frontier[:j], frontier[j+1:]...)
			all = append(all, joined)
		}
	}
	return all
}

// TestInternedKernelMatchesNaive is the semantics-preservation property:
// across random Compare/Join/Fork traces, the interned kernel (handle fast
// paths, pairwise cache, batch Comparer) agrees with the name-level
// specification on every pair — including repeated queries that exercise
// cache hits.
func TestInternedKernelMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		stamps := randomTrace(rng, 60)
		var cmp Comparer
		for pass := 0; pass < 2; pass++ { // second pass hits the caches
			for i := range stamps {
				for j := range stamps {
					want := naiveCompare(stamps[i], stamps[j])
					if got := Compare(stamps[i], stamps[j]); got != want {
						t.Fatalf("seed %d: Compare(%v, %v) = %v, naive %v",
							seed, stamps[i], stamps[j], got, want)
					}
					if got := cmp.Compare(stamps[i], stamps[j]); got != want {
						t.Fatalf("seed %d: Comparer(%v, %v) = %v, naive %v",
							seed, stamps[i], stamps[j], got, want)
					}
				}
			}
		}
	}
}

// TestForkJoinHandleIdentity: fork-then-join must restore the exact original
// stamp, and with interning that means the very same handles.
func TestForkJoinHandleIdentity(t *testing.T) {
	s := Seed().Update()
	a, b := s.Fork()
	back, err := Join(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if back.UpdateHandle() != s.UpdateHandle() || back.IDHandle() != s.IDHandle() {
		t.Errorf("fork/join did not restore the interned handles: %v vs %v", back, s)
	}
	// Update shares the id handle into the update slot.
	u := s.Update()
	if u.UpdateHandle() != s.IDHandle() {
		t.Error("Update did not share the id handle")
	}
}

// TestCompareAllocationFree pins Compare on interned stamps to zero
// allocations — the acceptance bar the benchstamp CI gate enforces. Covered
// shapes: identical handles (converged), cached divergent pairs, and
// uncached deep walks.
func TestCompareAllocationFree(t *testing.T) {
	s := Seed().Update()
	a, b := s.Fork()
	a = a.Update()
	c, d := a.Fork()
	c, d = c.Update(), d.Update() // concurrent pair

	pairs := [][2]Stamp{
		{b, b}, // identical handles
		{a, b}, // divergent, cache-resident after warm-up
		{c, d}, // concurrent
	}
	for _, p := range pairs {
		Compare(p[0], p[1]) // warm the pairwise cache
		if allocs := testing.AllocsPerRun(500, func() { _ = Compare(p[0], p[1]) }); allocs != 0 {
			t.Errorf("Compare(%v, %v) allocates %.1f/op, want 0", p[0], p[1], allocs)
		}
	}
	if allocs := testing.AllocsPerRun(500, func() { _ = b.Equal(b) }); allocs != 0 {
		t.Errorf("Equal allocates %.1f/op, want 0", allocs)
	}
}

// TestCompareCacheConcurrent hammers Compare over a shared working set from
// many goroutines; under -race this proves the direct-mapped atomic cache is
// sound, and the final sweep proves no stale entry ever surfaces a wrong
// outcome.
func TestCompareCacheConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	stamps := randomTrace(rng, 80)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for n := 0; n < 5000; n++ {
				i, j := r.Intn(len(stamps)), r.Intn(len(stamps))
				if got, want := Compare(stamps[i], stamps[j]), naiveCompare(stamps[i], stamps[j]); got != want {
					t.Errorf("concurrent Compare(%v, %v) = %v, want %v",
						stamps[i], stamps[j], got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

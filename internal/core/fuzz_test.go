package core

import (
	"testing"
)

// FuzzParse checks that the text parser never panics, never accepts
// invariant-violating stamps, and that accepted stamps round-trip
// canonically. Run with `go test -fuzz=FuzzParse ./internal/core` for a
// full fuzzing session; the seed corpus runs on every `go test`.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"[ε|ε]", "[|ε]", "[1|0+1]", "[1|00+01+1]", "[0+10|0+10]",
		"", "[", "]", "[|]", "[x|y]", "[1|0]", "[0+01|0]", "[ε|ε]extra",
		"[ 1 | 1 ]", "[∅|∅]", "[e|e]",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		s, err := Parse(input)
		if err != nil {
			return
		}
		if err := CheckI1(s); err != nil {
			t.Fatalf("Parse(%q) accepted an invalid stamp: %v", input, err)
		}
		back, err := Parse(s.String())
		if err != nil {
			t.Fatalf("re-parse of %v failed: %v", s, err)
		}
		if !back.Equal(s) {
			t.Fatalf("canonical round trip changed %v to %v", s, back)
		}
	})
}

// FuzzDecodeBinary checks the binary decoder against arbitrary bytes: no
// panics, no invalid stamps, and canonical re-encoding of accepted input.
func FuzzDecodeBinary(f *testing.F) {
	for _, s := range []Stamp{Seed(), MustParse("[1|0+1]"), MustParse("[ε|00]")} {
		data, _ := s.MarshalBinary()
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0x01, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, used, err := DecodeBinary(data)
		if err != nil {
			return
		}
		if used <= 0 || used > len(data) {
			t.Fatalf("implausible consumed count %d of %d", used, len(data))
		}
		if err := CheckI1(s); err != nil {
			t.Fatalf("decoder accepted invalid stamp: %v", err)
		}
		re := s.AppendBinary(nil)
		back, used2, err := DecodeBinary(re)
		if err != nil || used2 != len(re) || !back.Equal(s) {
			t.Fatalf("re-encode of %v not canonical: %v", s, err)
		}
	})
}

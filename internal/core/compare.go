package core

// Ordering is the outcome of comparing two coexisting elements by their
// version stamps. The paper distinguishes three situations relevant to
// optimistic replication (Section 2): equivalence, obsolescence (one element
// dominates the other), and mutual inconsistency (a conflict).
type Ordering int

const (
	// Equal: both elements have seen exactly the same updates; they are
	// interchangeable after, e.g., a synchronization.
	Equal Ordering = iota + 1
	// Before: the receiver is obsolete relative to the argument — the
	// argument has seen every update the receiver has, and at least one
	// more.
	Before
	// After: the receiver dominates the argument (the converse of Before).
	After
	// Concurrent: each element has seen at least one update the other has
	// not; the replicas are mutually inconsistent and must be reconciled.
	Concurrent
)

// String returns a human-readable rendering of the ordering.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return "invalid"
	}
}

// Compare relates two elements of the same frontier by their stamps. It
// implements the pre-order a ≤ b ⇔ fst(V(a)) ⊑ fst(V(b)) of Section 4,
// refined into the four-way outcome used by replication systems. By
// Corollary 5.2 the result coincides with inclusion of the elements' causal
// histories.
//
// Compare is only meaningful for stamps of coexisting elements (the same
// frontier); relating an element to one of its own ancestors is outside the
// frontier-ordering contract (Section 1.2).
//
// Compare is allocation-free: identical interned update handles short-circuit
// to Equal (the converged steady state), repeated pairs are answered from a
// bounded process-wide cache keyed by handle ids, and the fallback walks both
// operands in place without building any intermediate structure.
func Compare(a, b Stamp) Ordering {
	if a.u == b.u {
		return Equal
	}
	ka, kb := a.u.ID(), b.u.ID()
	key, cacheable := cmpCacheKey(ka, kb)
	if cacheable {
		if rel, ok := cmpCacheGet(key); ok {
			return rel
		}
	}
	rel := compareSlow(a, b)
	if cacheable {
		cmpCachePut(key, rel)
	}
	return rel
}

// compareSlow relates two stamps whose update handles differ, by in-place
// walks of the sorted-slice representations.
func compareSlow(a, b Stamp) Ordering {
	nu, mu := a.u.Name(), b.u.Name()
	ab := nu.Leq(mu)
	ba := mu.Leq(nu)
	switch {
	case ab && ba:
		return Equal
	case ab:
		return Before
	case ba:
		return After
	default:
		return Concurrent
	}
}

// Leq reports fst(a) ⊑ fst(b): b knows every update a knows. This is the
// non-strict pre-order underlying Compare.
func (s Stamp) Leq(b Stamp) bool { return s.u.Leq(b.u) }

// Equivalent reports that both stamps record exactly the same updates.
func (s Stamp) Equivalent(b Stamp) bool { return Compare(s, b) == Equal }

// ObsoleteRelativeTo reports that b strictly dominates s: b has seen every
// update s has, plus at least one more (the paper's "obsolescence").
func (s Stamp) ObsoleteRelativeTo(b Stamp) bool { return Compare(s, b) == Before }

// Dominates reports that s strictly dominates b.
func (s Stamp) Dominates(b Stamp) bool { return Compare(s, b) == After }

// ConcurrentWith reports mutual inconsistency: each side has seen an update
// the other has not.
func (s Stamp) ConcurrentWith(b Stamp) bool { return Compare(s, b) == Concurrent }

// Equal reports structural equality of the two stamps (both components).
// This is stronger than Equivalent, which only compares update components:
// two equivalent frontier elements usually carry different ids. For interned
// stamps this is two pointer comparisons.
func (s Stamp) Equal(b Stamp) bool {
	return s.u.Equal(b.u) && s.i.Equal(b.i)
}

package core

import (
	"fmt"

	"versionstamp/internal/name"
)

// This file implements checkers for the three invariants that characterize
// reachable configurations of version stamps (paper Section 4). They are
// exported because the simulator (internal/sim) re-verifies them after every
// operation of every randomized trace, turning the paper's inductive proofs
// into executable checks.

// CheckI1 verifies Invariant I1 on a single stamp: u ⊑ i. The update
// component is always dominated by the id; this guarantees that no obsolete
// information lingers in u when id simplifications become possible.
func CheckI1(s Stamp) error {
	return checkI1Names(s.u.Name(), s.i.Name())
}

// checkI1Names is the name-level form of CheckI1, shared with the
// constructors, which must validate before interning.
func checkI1Names(u, i name.Name) error {
	if err := u.Validate(); err != nil {
		return fmt.Errorf("core: I1: update component: %w", err)
	}
	if err := i.Validate(); err != nil {
		return fmt.Errorf("core: I1: id component: %w", err)
	}
	if !u.Leq(i) {
		return fmt.Errorf("core: I1 violated: u = %v ⋢ i = %v", u, i)
	}
	return nil
}

// CheckI2 verifies Invariant I2 on a frontier: for any two distinct elements
// x and y, every string in ix is incomparable to every string in iy. Ids
// therefore denote non-intersecting parts of "the whole".
func CheckI2(frontier []Stamp) error {
	for x := 0; x < len(frontier); x++ {
		for y := x + 1; y < len(frontier); y++ {
			if !frontier[x].i.IncomparableTo(frontier[y].i) {
				return fmt.Errorf("core: I2 violated between elements %d (i=%v) and %d (i=%v)",
					x, frontier[x].i, y, frontier[y].i)
			}
		}
	}
	return nil
}

// CheckI3 verifies Invariant I3 on a frontier: for any two elements x and y
// and any string r ∈ ux, {r} ⊑ iy implies {r} ⊑ uy. Intuitively: if x's
// update knowledge overlaps y's identity, then y itself already knows those
// updates — which is what keeps a fresh update on one element from being
// spuriously dominated by another.
func CheckI3(frontier []Stamp) error {
	for x := 0; x < len(frontier); x++ {
		for y := 0; y < len(frontier); y++ {
			if x == y {
				continue
			}
			ux := frontier[x].u.Name()
			for _, r := range ux.Bits() {
				if frontier[y].i.Covers(r) && !frontier[y].u.Covers(r) {
					return fmt.Errorf(
						"core: I3 violated: r = %v ∈ u%d, {r} ⊑ i%d = %v but {r} ⋢ u%d = %v",
						r, x, y, frontier[y].i, y, frontier[y].u)
				}
			}
		}
	}
	return nil
}

// CheckFrontier runs all invariant checks applicable to a frontier of
// coexisting stamps: I1 on every stamp, then I2 and I3 across the frontier.
func CheckFrontier(frontier []Stamp) error {
	for idx, s := range frontier {
		if err := CheckI1(s); err != nil {
			return fmt.Errorf("element %d: %w", idx, err)
		}
	}
	if err := CheckI2(frontier); err != nil {
		return err
	}
	return CheckI3(frontier)
}

package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genFrontier is a quick.Generator producing reachable frontiers: the
// result of a random fork/update/join trace from the seed, so every
// generated configuration satisfies I1–I3 by construction (and the checks
// re-verify it).
type genFrontier struct{ Stamps []Stamp }

var _ quick.Generator = genFrontier{}

// Generate implements quick.Generator.
func (genFrontier) Generate(rng *rand.Rand, size int) reflect.Value {
	ops := 10 + rng.Intn(40)
	frontier := []Stamp{Seed()}
	for k := 0; k < ops; k++ {
		switch op := rng.Intn(3); {
		case op == 0:
			i := rng.Intn(len(frontier))
			frontier[i] = frontier[i].Update()
		case op == 1 || len(frontier) == 1:
			i := rng.Intn(len(frontier))
			a, b := frontier[i].Fork()
			frontier[i] = a
			frontier = append(frontier, b)
		default:
			i, j := rng.Intn(len(frontier)), rng.Intn(len(frontier))
			if i == j {
				continue
			}
			joined, err := Join(frontier[i], frontier[j])
			if err != nil {
				continue
			}
			frontier[i] = joined
			frontier = append(frontier[:j], frontier[j+1:]...)
		}
	}
	return reflect.ValueOf(genFrontier{Stamps: frontier})
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 150}
}

func TestQuickFrontierInvariants(t *testing.T) {
	if err := quick.Check(func(f genFrontier) bool {
		return CheckFrontier(f.Stamps) == nil
	}, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickForkJoinIdentity(t *testing.T) {
	if err := quick.Check(func(f genFrontier) bool {
		for _, s := range f.Stamps {
			a, b := s.Fork()
			back, err := Join(a, b)
			if err != nil || !back.Equal(s.Reduce()) {
				return false
			}
		}
		return true
	}, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickUpdateIdempotentOnStamps(t *testing.T) {
	if err := quick.Check(func(f genFrontier) bool {
		for _, s := range f.Stamps {
			u := s.Update()
			if !u.Update().Equal(u) {
				return false
			}
		}
		return true
	}, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareTotalOnFrontier(t *testing.T) {
	// Compare always yields one of the four outcomes and is antisymmetric.
	if err := quick.Check(func(f genFrontier) bool {
		for i := range f.Stamps {
			for j := range f.Stamps {
				o1, o2 := Compare(f.Stamps[i], f.Stamps[j]), Compare(f.Stamps[j], f.Stamps[i])
				switch o1 {
				case Equal:
					if o2 != Equal {
						return false
					}
				case Before:
					if o2 != After {
						return false
					}
				case After:
					if o2 != Before {
						return false
					}
				case Concurrent:
					if o2 != Concurrent {
						return false
					}
				default:
					return false
				}
			}
		}
		return true
	}, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickReduceIdempotentAndOrderPreserving(t *testing.T) {
	if err := quick.Check(func(f genFrontier) bool {
		for i := range f.Stamps {
			r := f.Stamps[i].Reduce()
			if !r.Reduce().Equal(r) || !r.IsReduced() {
				return false
			}
			// Reduction never changes how an element compares to the rest
			// of its frontier.
			for j := range f.Stamps {
				if i == j {
					continue
				}
				reduced := make([]Stamp, len(f.Stamps))
				copy(reduced, f.Stamps)
				reduced[i] = r
				if Compare(reduced[i], reduced[j]) != Compare(f.Stamps[i], f.Stamps[j]) {
					return false
				}
			}
		}
		return true
	}, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickBinaryRoundTripStamps(t *testing.T) {
	if err := quick.Check(func(f genFrontier) bool {
		for _, s := range f.Stamps {
			data, err := s.MarshalBinary()
			if err != nil {
				return false
			}
			var back Stamp
			if err := back.UnmarshalBinary(data); err != nil || !back.Equal(s) {
				return false
			}
			text, err := s.MarshalText()
			if err != nil {
				return false
			}
			var back2 Stamp
			if err := back2.UnmarshalText(text); err != nil || !back2.Equal(s) {
				return false
			}
		}
		return true
	}, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickSyncMakesEquivalent(t *testing.T) {
	if err := quick.Check(func(f genFrontier) bool {
		if len(f.Stamps) < 2 {
			return true
		}
		a, b, err := Sync(f.Stamps[0], f.Stamps[1])
		if err != nil {
			return false
		}
		if Compare(a, b) != Equal {
			return false
		}
		// The synced pair forms a valid frontier with the rest.
		rest := append([]Stamp{a, b}, f.Stamps[2:]...)
		if CheckFrontier(rest) != nil {
			return false
		}
		// The synced replicas dominate-or-equal every OTHER surviving
		// element that their ancestors dominated. (Comparing them with
		// their own ancestors is NOT asserted: ancestor and descendant
		// never coexist, and frontier ordering is only defined for
		// coexisting elements — see TestCrossFrontierComparisonUndefined.)
		for _, other := range f.Stamps[2:] {
			if Compare(other, f.Stamps[0]) == Before && Compare(other, a) == After {
				return false
			}
		}
		return true
	}, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestCrossFrontierComparisonUndefined documents the boundary of the
// mechanism's contract (paper §1.2): stamps order only COEXISTING elements.
// An element and its own descendant never coexist, and comparing their
// stamps can give answers that contradict causal history — deliberately,
// because reduction discards exactly the information that cannot matter
// within any one frontier.
func TestCrossFrontierComparisonUndefined(t *testing.T) {
	a, b := Seed().Fork()
	a, b = a.Update(), b.Update() // [0|0], [1|1]
	sa, sb, err := Sync(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Causally, sa has seen strictly more than a. But a's stamp compares
	// AFTER its descendant's: the join reduced [0+1|0+1] to [ε|ε] because
	// within the new frontier no element can ever need the distinction.
	if got := Compare(a, sa); got != After {
		t.Errorf("cross-frontier comparison = %v (this test documents the "+
			"undefined-ness; update it if reduction semantics change)", got)
	}
	// Within the new frontier everything is consistent.
	if Compare(sa, sb) != Equal {
		t.Error("synced pair must be equal")
	}
}

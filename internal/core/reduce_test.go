package core

import (
	"fmt"
	"math/rand"
	"testing"

	"versionstamp/internal/bitstr"
	"versionstamp/internal/name"
	"versionstamp/internal/trie"
)

func TestReduceExamples(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"[ε|ε]", "[ε|ε]"},
		{"[1|01+1]", "[1|01+1]"},             // no sibling pair: unchanged
		{"[1|00+01+1]", "[ε|ε]"},             // 00,01 -> 0; then 0,1 -> ε (1 ∈ u)
		{"[1|0+1]", "[ε|ε]"},                 // 0,1 -> ε with 1 ∈ u
		{"[ε|00+01]", "[ε|0]"},               // children absent from u
		{"[00+01|00+01]", "[0|0]"},           // children present in u
		{"[00|00+01]", "[0|0]"},              // only one child present in u
		{"[00+010+011|00+010+011]", "[0|0]"}, // cascading collapses
		// 000,001 -> 00; 00,01 -> 0; 10,11 -> 1; 0,1 -> ε.
		{"[ε|000+001+01+10+11]", "[ε|ε]"},
	}
	for _, tt := range tests {
		s := MustParse(tt.in)
		got := s.Reduce()
		if want := MustParse(tt.want); !got.Equal(want) {
			t.Errorf("Reduce(%v) = %v, want %v", s, got, want)
		}
	}
}

func TestReduceIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for i := 0; i < 200; i++ {
		s := randomUnreducedStamp(rng)
		r := s.Reduce()
		if !r.Reduce().Equal(r) {
			t.Fatalf("Reduce not idempotent on %v: %v -> %v", s, r, r.Reduce())
		}
		if !r.IsReduced() {
			t.Fatalf("Reduce(%v) = %v is not in normal form", s, r)
		}
	}
}

func TestReduceShrinks(t *testing.T) {
	// Each rewriting yields u' ⊑ u and i' ⊑ i (Section 6).
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 200; i++ {
		s := randomUnreducedStamp(rng)
		r := s.Reduce()
		if !r.UpdateName().Leq(s.UpdateName()) {
			t.Fatalf("u' ⋢ u for %v -> %v", s, r)
		}
		if !r.IDName().Leq(s.IDName()) {
			t.Fatalf("i' ⋢ i for %v -> %v", s, r)
		}
		if err := CheckI1(r); err != nil {
			t.Fatalf("reduced stamp violates I1: %v", err)
		}
	}
}

func TestReduceConfluent(t *testing.T) {
	// Applying rewritings in any order reaches the same normal form. We
	// exercise this by collapsing pairs in random order and comparing with
	// Reduce's deterministic order.
	rng := rand.New(rand.NewSource(32))
	for iter := 0; iter < 300; iter++ {
		s := randomUnreducedStamp(rng)
		want := s.Reduce()
		u, i := s.UpdateName(), s.IDName()
		for {
			pairs := allSiblingPairs(i)
			if len(pairs) == 0 {
				break
			}
			pick := pairs[rng.Intn(len(pairs))]
			u, i = rewriteOnce(u, i, pick)
		}
		got := Stamp{u: trie.Intern(u), i: trie.Intern(i)}
		if !got.Equal(want) {
			t.Fatalf("confluence violated on %v: random order %v, Reduce %v", s, got, want)
		}
	}
}

// allSiblingPairs lists every parent whose two children are members of n.
func allSiblingPairs(n name.Name) []bitstr.Bits {
	var out []bitstr.Bits
	for _, b := range n.Bits() {
		parent, last, ok := b.Parent()
		if !ok || last != bitstr.Zero {
			continue
		}
		if n.Contains(parent.Append1()) {
			out = append(out, parent)
		}
	}
	return out
}

func TestReduceStepsCount(t *testing.T) {
	tests := []struct {
		in   string
		want int
	}{
		{"[ε|ε]", 0},
		{"[1|01+1]", 0},
		{"[ε|00+01]", 1},
		{"[1|00+01+1]", 2},
		{"[ε|000+001+01+10+11]", 4},
	}
	for _, tt := range tests {
		if got := MustParse(tt.in).ReduceSteps(); got != tt.want {
			t.Errorf("ReduceSteps(%s) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

// TestReducePreservesR mechanically re-checks the Section 6 theorem: a
// rewriting applied to one stamp of a configuration preserves the relation
//
//	R(V) = {(x, S) | fst(V(x)) ⊑ ⊔ fst[V[S]]}
//
// for every element x and subset S. We generate random non-reducing
// configurations, reduce one element, and compare R before and after.
func TestReducePreservesR(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		frontier := randomNoReduceFrontier(rng, 50)
		if len(frontier) < 2 {
			continue
		}
		idx := rng.Intn(len(frontier))
		if frontier[idx].IsReduced() {
			continue
		}
		before := relationR(frontier)
		reduced := make([]Stamp, len(frontier))
		copy(reduced, frontier)
		reduced[idx] = reduced[idx].Reduce()
		after := relationR(reduced)
		if len(before) != len(after) {
			t.Fatalf("seed %d: R changed size after reduction: %d -> %d",
				seed, len(before), len(after))
		}
		for k := range before {
			if !after[k] {
				t.Fatalf("seed %d: R lost pair %s after reduction", seed, k)
			}
		}
	}
}

// relationR enumerates R(V) over all x and all non-empty S (subsets encoded
// as bitmasks; frontier sizes stay small enough for exhaustive enumeration).
func relationR(frontier []Stamp) map[string]bool {
	out := make(map[string]bool)
	n := len(frontier)
	if n > 12 {
		n = 12 // cap exhaustive subset enumeration
	}
	for x := 0; x < n; x++ {
		for mask := 1; mask < (1 << n); mask++ {
			joined := name.Empty()
			for y := 0; y < n; y++ {
				if mask&(1<<y) != 0 {
					joined = name.Join(joined, frontier[y].UpdateName())
				}
			}
			if frontier[x].UpdateName().Leq(joined) {
				out[keyXS(x, mask)] = true
			}
		}
	}
	return out
}

func keyXS(x, mask int) string {
	return fmt.Sprintf("%d:%d", x, mask)
}

// randomUnreducedStamp builds a stamp by running a short random trace with
// non-reducing joins, biasing toward join-heavy endings so sibling pairs are
// common.
func randomUnreducedStamp(rng *rand.Rand) Stamp {
	frontier := randomNoReduceFrontier(rng, 30)
	return frontier[rng.Intn(len(frontier))]
}

func randomNoReduceFrontier(rng *rand.Rand, ops int) []Stamp {
	frontier := []Stamp{Seed()}
	for k := 0; k < ops; k++ {
		switch op := rng.Intn(4); {
		case op == 0:
			i := rng.Intn(len(frontier))
			frontier[i] = frontier[i].Update()
		case op == 1 || len(frontier) == 1:
			i := rng.Intn(len(frontier))
			a, b := frontier[i].Fork()
			frontier[i] = a
			frontier = append(frontier, b)
		default:
			i, j := rng.Intn(len(frontier)), rng.Intn(len(frontier))
			if i == j {
				continue
			}
			joined, err := JoinNoReduce(frontier[i], frontier[j])
			if err != nil {
				continue
			}
			frontier[i] = joined
			frontier = append(frontier[:j], frontier[j+1:]...)
		}
	}
	return frontier
}

package core

import "sync/atomic"

// Pairwise comparison caching. Stamps are drawn from a small set of distinct
// interned update names (they grow with frontier width, not history), so the
// same (a, b) update pairs recur across millions of keys during anti-entropy.
// Two layers exploit that:
//
//   - a process-wide bounded cache of Compare outcomes, direct-mapped over
//     atomic slots so concurrent sync rounds share it without locks or
//     allocations (a collision just overwrites — it is a cache, not a table);
//   - Comparer, a per-batch memo for single-threaded loops (DiffAgainst,
//     ApplyDelta) that skips even the atomic traffic.
//
// Cache keys pack the two handle ids (issued monotonically and capped
// under 2^31 by trie's id-issuance bound; never reused even when the
// intern table rotates a record out) into 62 bits, leaving 2 bits for the
// outcome. Id 0 marks ∅ or an uninterned overflow handle; those pairs are
// computed directly.

// cmpCacheBits sizes the direct-mapped cache: 4096 slots × 8 bytes = 32 KiB,
// comfortably cache-resident while covering far more distinct update pairs
// than any real frontier produces.
const cmpCacheBits = 12

var cmpCache [1 << cmpCacheBits]atomic.Uint64

// cmpCacheKey packs an id pair into a cache key. The zero key never occurs
// for valid pairs (both ids >= 1), so zero slots read as empty.
func cmpCacheKey(ka, kb uint32) (uint64, bool) {
	if ka == 0 || kb == 0 {
		return 0, false
	}
	return uint64(ka)<<31 | uint64(kb), true
}

// cmpCacheSlot picks the slot for a key (Fibonacci hashing).
func cmpCacheSlot(key uint64) *atomic.Uint64 {
	return &cmpCache[(key*0x9E3779B97F4A7C15)>>(64-cmpCacheBits)]
}

func cmpCacheGet(key uint64) (Ordering, bool) {
	v := cmpCacheSlot(key).Load()
	if v>>2 != key {
		return 0, false
	}
	return Ordering(v&3) + 1, true
}

func cmpCachePut(key uint64, rel Ordering) {
	cmpCacheSlot(key).Store(key<<2 | uint64(rel-1))
}

// Comparer memoizes Compare outcomes for one batch of comparisons — the
// kvstore threads one through each DiffAgainst/ApplyDelta call, where a
// converged stripe compares the same handful of update pairs once per key.
// The memo is keyed by handle ids, costs one map probe per hit, and falls
// back to Compare (which itself fast-paths identical handles) for pairs it
// cannot key. The zero Comparer is ready to use and allocates its memo only
// on the first cacheable miss, so a batch of identical-handle comparisons
// allocates nothing. Comparer is not safe for concurrent use; it is scratch
// for a single loop.
type Comparer struct {
	memo map[uint64]Ordering
}

// Compare relates a and b exactly as the package-level Compare does,
// remembering outcomes for the lifetime of the Comparer.
func (c *Comparer) Compare(a, b Stamp) Ordering {
	if a.u == b.u {
		return Equal
	}
	key, cacheable := cmpCacheKey(a.u.ID(), b.u.ID())
	if !cacheable {
		return compareSlow(a, b)
	}
	if rel, ok := c.memo[key]; ok {
		return rel
	}
	rel := Compare(a, b)
	if c.memo == nil {
		c.memo = make(map[uint64]Ordering, 8)
	}
	c.memo[key] = rel
	return rel
}

package causalgraph

import (
	"math/rand"
	"testing"

	"versionstamp/internal/causal"
)

// buildFigure2 records the execution of the paper's Figure 2 and returns
// the named elements.
func buildFigure2(t *testing.T) (*Recorder, map[string]ElemID) {
	t.Helper()
	r, a1 := New()
	must := func(id ElemID, err error) ElemID {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	a2 := must(r.Update(a1))
	b1, c1, err := r.Fork(a2)
	if err != nil {
		t.Fatal(err)
	}
	d1, e1, err := r.Fork(b1)
	if err != nil {
		t.Fatal(err)
	}
	c2 := must(r.Update(c1))
	c3 := must(r.Update(c2))
	f1 := must(r.Join(e1, c3))
	g1 := must(r.Join(d1, f1))
	return r, map[string]ElemID{
		"a1": a1, "a2": a2, "b1": b1, "c1": c1, "d1": d1,
		"e1": e1, "c2": c2, "c3": c3, "f1": f1, "g1": g1,
	}
}

// TestPaperSection12Query reproduces the paper's example query: "one may
// want to inquire how c2 and a1 relate and determine that a1 is in the past
// of c2" — even though a1 and c2 never coexist.
func TestPaperSection12Query(t *testing.T) {
	r, e := buildFigure2(t)
	rel, err := r.Relation(e["a1"], e["c2"])
	if err != nil {
		t.Fatal(err)
	}
	if rel != Ancestor {
		t.Errorf("a1 vs c2 = %v, want ancestor", rel)
	}
	// And such a pair can never share a frontier.
	ok, err := r.CoexistencePossible(e["a1"], e["c2"])
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("a1 and c2 must not be able to coexist")
	}
	// d1 and c2 are unrelated: they CAN coexist (they do, in Figure 2's
	// double-dotted frontier).
	ok, _ = r.CoexistencePossible(e["d1"], e["c2"])
	if !ok {
		t.Error("d1 and c2 should be able to coexist")
	}
}

func TestFigure2Relations(t *testing.T) {
	r, e := buildFigure2(t)
	tests := []struct {
		x, y string
		want Relation
	}{
		{"a1", "a1", Same},
		{"a1", "g1", Ancestor},
		{"g1", "a1", Descendant},
		{"b1", "c1", Unrelated},
		{"d1", "e1", Unrelated},
		{"e1", "f1", Ancestor},
		{"c3", "f1", Ancestor},
		{"c3", "d1", Unrelated},
		{"b1", "f1", Ancestor}, // via e1
		{"d1", "g1", Ancestor},
	}
	for _, tt := range tests {
		got, err := r.Relation(e[tt.x], e[tt.y])
		if err != nil {
			t.Fatalf("Relation(%s,%s): %v", tt.x, tt.y, err)
		}
		if got != tt.want {
			t.Errorf("Relation(%s,%s) = %v, want %v", tt.x, tt.y, got, tt.want)
		}
	}
}

func TestFigure2Histories(t *testing.T) {
	r, e := buildFigure2(t)
	// d1 has seen one update (a1->a2); c3 has seen three (a, c, c).
	hd, _ := r.History(e["d1"])
	hc, _ := r.History(e["c3"])
	if len(hd) != 1 || len(hc) != 3 {
		t.Fatalf("histories: d1=%v c3=%v", hd, hc)
	}
	// History ordering: d1 before c3 (its single update is the shared one).
	o, err := r.CompareHistories(e["d1"], e["c3"])
	if err != nil {
		t.Fatal(err)
	}
	if o != Before {
		t.Errorf("d1 vs c3 = %v, want before", o)
	}
	// g1 has seen everything.
	hg, _ := r.History(e["g1"])
	if len(hg) != 3 {
		t.Errorf("g1 history = %v", hg)
	}
	// g1 merges d1 and f1, which between them saw exactly the updates c3
	// saw — so their histories are equal even though g1 is c3's descendant.
	if o, _ := r.CompareHistories(e["c3"], e["g1"]); o != Equal {
		t.Errorf("c3 vs g1 = %v, want equal", o)
	}
	if o, _ := r.CompareHistories(e["g1"], e["g1"]); o != Equal {
		t.Errorf("g1 vs g1 = %v, want equal", o)
	}
}

func TestLifecycleErrors(t *testing.T) {
	r, a := New()
	b, err := r.Update(a)
	if err != nil {
		t.Fatal(err)
	}
	// Operating on a retired element fails.
	if _, err := r.Update(a); err == nil {
		t.Error("update of past element accepted")
	}
	if _, _, err := r.Fork(a); err == nil {
		t.Error("fork of past element accepted")
	}
	if _, err := r.Join(a, b); err == nil {
		t.Error("join with past element accepted")
	}
	if _, err := r.Join(b, b); err == nil {
		t.Error("self join accepted")
	}
	// Unknown ids fail, but queries on past elements succeed.
	if _, err := r.Relation(a, ElemID(99)); err == nil {
		t.Error("unknown element accepted")
	}
	if _, err := r.History(ElemID(99)); err == nil {
		t.Error("unknown element accepted")
	}
	if _, err := r.CompareHistories(a, ElemID(99)); err == nil {
		t.Error("unknown element accepted")
	}
	if _, err := r.CoexistencePossible(ElemID(99), a); err == nil {
		t.Error("unknown element accepted")
	}
	if rel, err := r.Relation(a, b); err != nil || rel != Ancestor {
		t.Errorf("Relation on past element = %v, %v", rel, err)
	}
}

func TestCounts(t *testing.T) {
	r, a := New()
	if r.Size() != 1 || r.LiveCount() != 1 {
		t.Fatalf("initial: size=%d live=%d", r.Size(), r.LiveCount())
	}
	x, y, _ := r.Fork(a)
	if r.Size() != 3 || r.LiveCount() != 2 {
		t.Fatalf("after fork: size=%d live=%d", r.Size(), r.LiveCount())
	}
	if _, err := r.Join(x, y); err != nil {
		t.Fatal(err)
	}
	if r.Size() != 4 || r.LiveCount() != 1 {
		t.Fatalf("after join: size=%d live=%d", r.Size(), r.LiveCount())
	}
	live := r.Live()
	if len(live) != 1 || live[0] != ElemID(3) {
		t.Fatalf("Live() = %v", live)
	}
}

// TestHistoryOrderingMatchesCausalOracle runs random traces in lockstep
// with the causal-history model: for live pairs, CompareHistories must give
// exactly the oracle's answer.
func TestHistoryOrderingMatchesCausalOracle(t *testing.T) {
	seeds := int64(10)
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rec, a := New()
		sys, ca := causal.NewSystem()
		recLive := []ElemID{a}
		sysLive := []causal.Elem{ca}
		for step := 0; step < 150; step++ {
			switch op := rng.Intn(3); {
			case op == 0:
				i := rng.Intn(len(recLive))
				ne, err := rec.Update(recLive[i])
				if err != nil {
					t.Fatal(err)
				}
				ce, err := sys.Update(sysLive[i])
				if err != nil {
					t.Fatal(err)
				}
				recLive[i], sysLive[i] = ne, ce
			case op == 1 || len(recLive) == 1:
				i := rng.Intn(len(recLive))
				n1, n2, err := rec.Fork(recLive[i])
				if err != nil {
					t.Fatal(err)
				}
				c1, c2, err := sys.Fork(sysLive[i])
				if err != nil {
					t.Fatal(err)
				}
				recLive[i], sysLive[i] = n1, c1
				recLive = append(recLive, n2)
				sysLive = append(sysLive, c2)
			default:
				i, j := rng.Intn(len(recLive)), rng.Intn(len(recLive))
				if i == j {
					continue
				}
				ne, err := rec.Join(recLive[i], recLive[j])
				if err != nil {
					t.Fatal(err)
				}
				ce, err := sys.Join(sysLive[i], sysLive[j])
				if err != nil {
					t.Fatal(err)
				}
				recLive[i], sysLive[i] = ne, ce
				recLive = append(recLive[:j], recLive[j+1:]...)
				sysLive = append(sysLive[:j], sysLive[j+1:]...)
			}
			// Pairwise agreement on the live frontier.
			for x := 0; x < len(recLive); x++ {
				for y := x + 1; y < len(recLive); y++ {
					want, err := sys.Compare(sysLive[x], sysLive[y])
					if err != nil {
						t.Fatal(err)
					}
					got, err := rec.CompareHistories(recLive[x], recLive[y])
					if err != nil {
						t.Fatal(err)
					}
					if Ordering(want) != got {
						t.Fatalf("seed %d step %d: recorder %v, oracle %v", seed, step, got, want)
					}
				}
			}
		}
	}
}

// TestRelationConsistency: path relation Ancestor implies history ⊆, and
// history-concurrency implies path-unrelatedness.
func TestRelationConsistency(t *testing.T) {
	for seed := int64(20); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rec, a := New()
		live := []ElemID{a}
		for step := 0; step < 80; step++ {
			switch op := rng.Intn(3); {
			case op == 0:
				i := rng.Intn(len(live))
				ne, _ := rec.Update(live[i])
				live[i] = ne
			case op == 1 || len(live) == 1:
				i := rng.Intn(len(live))
				n1, n2, _ := rec.Fork(live[i])
				live[i] = n1
				live = append(live, n2)
			default:
				i, j := rng.Intn(len(live)), rng.Intn(len(live))
				if i == j {
					continue
				}
				ne, _ := rec.Join(live[i], live[j])
				live[i] = ne
				live = append(live[:j], live[j+1:]...)
			}
		}
		n := rec.Size()
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				rel, err := rec.Relation(ElemID(x), ElemID(y))
				if err != nil {
					t.Fatal(err)
				}
				ord, err := rec.CompareHistories(ElemID(x), ElemID(y))
				if err != nil {
					t.Fatal(err)
				}
				if rel == Ancestor && !(ord == Before || ord == Equal) {
					t.Fatalf("seed %d: %d ancestor-of %d but histories %v", seed, x, y, ord)
				}
				if ord == Concurrent && rel != Unrelated {
					t.Fatalf("seed %d: %d/%d history-concurrent but path %v", seed, x, y, rel)
				}
			}
		}
	}
}

func TestStringers(t *testing.T) {
	if Same.String() != "same" || Ancestor.String() != "ancestor" ||
		Descendant.String() != "descendant" || Unrelated.String() != "unrelated" ||
		Relation(0).String() != "invalid" {
		t.Error("Relation.String incorrect")
	}
	if Equal.String() != "equal" || Before.String() != "before" ||
		After.String() != "after" || Concurrent.String() != "concurrent" ||
		Ordering(0).String() != "invalid" {
		t.Error("Ordering.String incorrect")
	}
}

// Package causalgraph records a complete fork/join execution — every
// element ever created, not just the current frontier — and answers
// ordering queries between ANY two elements of the run.
//
// Section 1.2 of the paper distinguishes two orderings: *frontier ordering*
// (between coexisting elements — what version stamps provide) and ordering
// of *all elements* of a distributed evolution, which "could be necessary
// when debugging a recorded execution of the replicated system"; the
// paper's example is determining that element a1 lies in the past of c2
// even though they never coexist. This package is that debugger's core: a
// DAG recorder with two query families:
//
//   - Relation: the happened-before order on elements themselves
//     (derivation-path reachability);
//   - CompareHistories: inclusion of update histories, the
//     version-management pre-order, which for coexisting elements agrees
//     exactly with version stamps and causal histories (cross-checked in
//     the tests).
//
// The recorder requires the global view that version stamps avoid — which
// is the point: it exists for post-hoc analysis and testing, not for the
// replicas themselves.
package causalgraph

import (
	"fmt"
	"sort"
)

// ElemID identifies an element of the recorded execution. IDs are assigned
// in creation order and never reused.
type ElemID uint64

// Relation classifies how two recorded elements relate in the
// happened-before order on elements.
type Relation int

// Relation values.
const (
	// Same: the two ids denote the same element.
	Same Relation = iota + 1
	// Ancestor: the first element lies in the past of the second.
	Ancestor
	// Descendant: the first element lies in the future of the second.
	Descendant
	// Unrelated: no derivation path connects the elements; only such pairs
	// can ever coexist in a frontier.
	Unrelated
)

// String returns a human-readable rendering of the relation.
func (r Relation) String() string {
	switch r {
	case Same:
		return "same"
	case Ancestor:
		return "ancestor"
	case Descendant:
		return "descendant"
	case Unrelated:
		return "unrelated"
	default:
		return "invalid"
	}
}

// Ordering mirrors core.Ordering for history comparisons.
type Ordering int

// Ordering values.
const (
	Equal Ordering = iota + 1
	Before
	After
	Concurrent
)

// String returns a human-readable rendering of the ordering.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return "invalid"
	}
}

// node is one recorded element.
type node struct {
	parents  []ElemID
	isUpdate bool // element created by an update operation
	live     bool // still in the frontier
}

// Recorder accumulates a fork/join execution. It is not safe for concurrent
// use.
type Recorder struct {
	nodes []node
}

// New creates a recorder with the initial single-element configuration and
// returns that element.
func New() (*Recorder, ElemID) {
	r := &Recorder{}
	return r, r.fresh(nil, false)
}

func (r *Recorder) fresh(parents []ElemID, isUpdate bool) ElemID {
	id := ElemID(len(r.nodes))
	r.nodes = append(r.nodes, node{parents: parents, isUpdate: isUpdate, live: true})
	return id
}

// Size returns the total number of recorded elements (live and past).
func (r *Recorder) Size() int { return len(r.nodes) }

// LiveCount returns the current frontier width.
func (r *Recorder) LiveCount() int {
	n := 0
	for _, nd := range r.nodes {
		if nd.live {
			n++
		}
	}
	return n
}

// Live returns the frontier elements in id order.
func (r *Recorder) Live() []ElemID {
	var out []ElemID
	for id, nd := range r.nodes {
		if nd.live {
			out = append(out, ElemID(id))
		}
	}
	return out
}

func (r *Recorder) checkLive(a ElemID) error {
	if int(a) >= len(r.nodes) {
		return fmt.Errorf("causalgraph: unknown element %d", a)
	}
	if !r.nodes[a].live {
		return fmt.Errorf("causalgraph: element %d is not in the frontier", a)
	}
	return nil
}

// Update records an update of a, returning the new element.
func (r *Recorder) Update(a ElemID) (ElemID, error) {
	if err := r.checkLive(a); err != nil {
		return 0, err
	}
	r.nodes[a].live = false
	return r.fresh([]ElemID{a}, true), nil
}

// Fork records a fork of a, returning both descendants.
func (r *Recorder) Fork(a ElemID) (ElemID, ElemID, error) {
	if err := r.checkLive(a); err != nil {
		return 0, 0, err
	}
	r.nodes[a].live = false
	return r.fresh([]ElemID{a}, false), r.fresh([]ElemID{a}, false), nil
}

// Join records a join of a and b, returning the merged element.
func (r *Recorder) Join(a, b ElemID) (ElemID, error) {
	if a == b {
		return 0, fmt.Errorf("causalgraph: join of element %d with itself", a)
	}
	if err := r.checkLive(a); err != nil {
		return 0, err
	}
	if err := r.checkLive(b); err != nil {
		return 0, err
	}
	r.nodes[a].live = false
	r.nodes[b].live = false
	return r.fresh([]ElemID{a, b}, false), nil
}

// reaches reports whether anc is x itself or an ancestor of x, by upward
// BFS over parent edges. Parent ids are always smaller than child ids, so
// the search prunes nodes below anc.
func (r *Recorder) reaches(anc, x ElemID) bool {
	if anc == x {
		return true
	}
	if anc > x {
		return false
	}
	seen := map[ElemID]bool{x: true}
	queue := []ElemID{x}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range r.nodes[cur].parents {
			if p == anc {
				return true
			}
			if p > anc && !seen[p] {
				seen[p] = true
				queue = append(queue, p)
			}
		}
	}
	return false
}

// Relation classifies two recorded elements (live or past) in the
// happened-before order on elements: connected by a derivation path, or
// unrelated. Elements connected by a path never coexist (paper §1.2).
func (r *Recorder) Relation(x, y ElemID) (Relation, error) {
	if int(x) >= len(r.nodes) || int(y) >= len(r.nodes) {
		return 0, fmt.Errorf("causalgraph: unknown element %d or %d", x, y)
	}
	switch {
	case x == y:
		return Same, nil
	case r.reaches(x, y):
		return Ancestor, nil
	case r.reaches(y, x):
		return Descendant, nil
	default:
		return Unrelated, nil
	}
}

// History returns the update history of an element (live or past): the set
// of update-elements in its ancestry (including itself if it is one),
// sorted. This is exactly the causal history of Section 2 with update
// elements standing for their update events.
func (r *Recorder) History(x ElemID) ([]ElemID, error) {
	if int(x) >= len(r.nodes) {
		return nil, fmt.Errorf("causalgraph: unknown element %d", x)
	}
	seen := map[ElemID]bool{x: true}
	queue := []ElemID{x}
	var out []ElemID
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if r.nodes[cur].isUpdate {
			out = append(out, cur)
		}
		for _, p := range r.nodes[cur].parents {
			if !seen[p] {
				seen[p] = true
				queue = append(queue, p)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// CompareHistories relates two elements by inclusion of their update
// histories — the version-management pre-order. For coexisting elements it
// coincides with the causal-history model and with version stamps
// (verified in the tests); for arbitrary pairs it extends that order to
// the whole recorded execution.
func (r *Recorder) CompareHistories(x, y ElemID) (Ordering, error) {
	hx, err := r.History(x)
	if err != nil {
		return 0, err
	}
	hy, err := r.History(y)
	if err != nil {
		return 0, err
	}
	ab := subset(hx, hy)
	ba := subset(hy, hx)
	switch {
	case ab && ba:
		return Equal, nil
	case ab:
		return Before, nil
	case ba:
		return After, nil
	default:
		return Concurrent, nil
	}
}

// subset reports a ⊆ b for sorted slices.
func subset(a, b []ElemID) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
	}
	return true
}

// CoexistencePossible reports whether two elements can belong to a common
// frontier in some run: exactly when neither is an ancestor of the other
// (paper §1.2: "any two elements that are connected by a direct arrowed
// path never coexist").
func (r *Recorder) CoexistencePossible(x, y ElemID) (bool, error) {
	rel, err := r.Relation(x, y)
	if err != nil {
		return false, err
	}
	return rel == Unrelated, nil
}

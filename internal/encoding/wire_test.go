package encoding

import (
	"bytes"
	"testing"

	"versionstamp/internal/core"
)

// wireStamps builds a few structurally different stamps.
func wireStamps() []core.Stamp {
	seed := core.Seed().Update()
	l, r := seed.Fork()
	l = l.Update()
	j, _ := core.Join(l, r)
	return []core.Stamp{core.Seed(), seed, l, r, j.Update()}
}

func TestDigestRoundTrip(t *testing.T) {
	var buf []byte
	digests := []Digest{}
	for i, s := range wireStamps() {
		d := Digest{Key: string(rune('a'+i)) + "-key", Stamp: s}
		digests = append(digests, d)
		buf = AppendDigest(buf, d)
	}
	for _, want := range digests {
		got, used, err := DecodeDigest(buf)
		if err != nil {
			t.Fatalf("DecodeDigest(%q): %v", want.Key, err)
		}
		buf = buf[used:]
		if got.Key != want.Key || !got.Stamp.Equal(want.Stamp) {
			t.Errorf("digest %q: got %q %v", want.Key, got.Key, got.Stamp)
		}
	}
	if len(buf) != 0 {
		t.Errorf("%d trailing bytes", len(buf))
	}
}

func TestEntryRoundTrip(t *testing.T) {
	entries := []Entry{
		{Key: "live", Value: []byte("payload"), Stamp: core.Seed().Update()},
		{Key: "empty", Value: []byte{}, Stamp: core.Seed().Update()},
		{Key: "gone", Deleted: true, Stamp: core.Seed().Update().Update()},
	}
	var buf []byte
	for _, e := range entries {
		buf = AppendEntry(buf, e)
	}
	for _, want := range entries {
		got, used, err := DecodeEntry(buf)
		if err != nil {
			t.Fatalf("DecodeEntry(%q): %v", want.Key, err)
		}
		buf = buf[used:]
		if got.Key != want.Key || got.Deleted != want.Deleted ||
			!bytes.Equal(got.Value, want.Value) || !got.Stamp.Equal(want.Stamp) {
			t.Errorf("entry %q: got %+v, want %+v", want.Key, got, want)
		}
		if got.Deleted && got.Value != nil {
			t.Errorf("tombstone %q carries a value", got.Key)
		}
	}
}

func TestEntrySmallerThanJSONStamp(t *testing.T) {
	// The binary entry must beat the JSON snapshot entry shape the v1
	// protocol shipped (key + base64 value + text stamp in a JSON object).
	s := core.Seed().Update()
	for i := 0; i < 6; i++ {
		half, _ := s.Fork()
		s = half.Update()
	}
	e := AppendEntry(nil, Entry{Key: "some/key", Value: []byte("v"), Stamp: s})
	jsonish := len(`{"key":"some/key","value":"dg==","stamp":""}`) + len(s.String())
	if len(e) >= jsonish {
		t.Errorf("binary entry %dB, JSON-ish %dB", len(e), jsonish)
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := AppendEntry(nil, Entry{Key: "k", Value: []byte("vvv"), Stamp: core.Seed().Update()})
	for n := 0; n < len(full); n++ {
		if _, _, err := DecodeEntry(full[:n]); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
	fullD := AppendDigest(nil, Digest{Key: "k", Stamp: core.Seed().Update()})
	for n := 0; n < len(fullD); n++ {
		if _, _, err := DecodeDigest(fullD[:n]); err == nil {
			t.Errorf("digest truncation at %d accepted", n)
		}
	}
}

func TestDecodeBadFlags(t *testing.T) {
	buf := AppendEntry(nil, Entry{Key: "k", Value: []byte("v"), Stamp: core.Seed()})
	buf[2] = 0x40 // flags byte of a 1-byte key
	if _, _, err := DecodeEntry(buf); err == nil {
		t.Error("unknown flags accepted")
	}
}

package encoding

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// Digest-tree frames: the wire shapes of the adaptive k-ary hash tree the v4
// anti-entropy protocol descends. A stripe's digests are ordered by TreePos
// (a 64-bit hash of the key), the position space is partitioned k ways per
// level, and every node is a fixed-size hash over its subtree — so two
// endpoints locate a divergent key by exchanging O(depth) small node frames
// instead of a whole stripe's digest list.
//
// Three shapes travel: tree nodes (a node coordinate plus a child bitmap and
// one 8-byte hash per present child), leaf digest runs (a node coordinate
// plus the digests whose positions fall under it), and the shape parameters
// themselves (fanout, depth). All appenders extend a caller-owned buffer —
// same buffer-reuse discipline as AppendDigest/AppendEntry — and all
// decoders bound every allocation by the bytes actually present, so hostile
// depth/fanout/count fields error out instead of allocating.

// TreePos maps a key to its position in the 64-bit tree keyspace (FNV-64a
// over the key bytes). Both endpoints order and partition a stripe's digests
// by this position, which — unlike positional splits of a sorted list — is
// stable across replicas whose key sets differ.
func TreePos(key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return h
}

// Tree shape bounds. Fanout must be a power of two so node paths pack into
// bit fields of a 64-bit position; depth × log2(fanout) may not exceed the
// 64 position bits. The caps bound what a hostile frame can make a decoder
// allocate or a server recompute.
const (
	MinTreeFanout = 2
	MaxTreeFanout = 64
	MaxTreeDepth  = 12
)

// ValidTreeShape reports whether (fanout, depth) is a tree shape this codec
// speaks: power-of-two fanout in [MinTreeFanout, MaxTreeFanout], depth in
// [1, MaxTreeDepth], and paths at every level fitting in 64 bits.
func ValidTreeShape(fanout, depth int) bool {
	if fanout < MinTreeFanout || fanout > MaxTreeFanout || bits.OnesCount(uint(fanout)) != 1 {
		return false
	}
	if depth < 1 || depth > MaxTreeDepth {
		return false
	}
	return depth*bits.TrailingZeros(uint(fanout)) <= 64
}

// TreeFanoutBits returns log2(fanout): the bits one level consumes of a
// node path.
func TreeFanoutBits(fanout int) int { return bits.TrailingZeros(uint(fanout)) }

// TreeBitmapLen returns the byte length of a child bitmap for a fanout.
func TreeBitmapLen(fanout int) int { return (fanout + 7) / 8 }

// BitmapGet reports bit i of a child bitmap (LSB-first within each byte —
// the layout every tree frame uses).
func BitmapGet(bm []byte, i int) bool {
	return bm[i>>3]&(1<<(i&7)) != 0
}

// BitmapSet sets bit i of a child bitmap.
func BitmapSet(bm []byte, i int) {
	bm[i>>3] |= 1 << (i & 7)
}

// TreeNode is one tree-node frame element: the node's coordinate in its
// stripe's tree plus a snapshot of its children — bit c of Bitmap set iff
// child c is non-empty, Hashes holding one 8-byte hash per set bit in
// ascending child order.
type TreeNode struct {
	Stripe int
	Depth  int    // the stripe tree's declared total depth
	Level  int    // 0 = root; children live at Level+1
	Path   uint64 // node index at Level: the top Level×log2(fanout) position bits
	Bitmap []byte
	Hashes []uint64
}

// AppendTreeNode appends one node element: stripe, depth, level, path
// (uvarints), the child bitmap (TreeBitmapLen(fanout) bytes), then one
// 8-byte big-endian hash per set bitmap bit.
func AppendTreeNode(dst []byte, n TreeNode) []byte {
	dst = binary.AppendUvarint(dst, uint64(n.Stripe))
	dst = binary.AppendUvarint(dst, uint64(n.Depth))
	dst = binary.AppendUvarint(dst, uint64(n.Level))
	dst = binary.AppendUvarint(dst, n.Path)
	dst = append(dst, n.Bitmap...)
	for _, h := range n.Hashes {
		dst = binary.BigEndian.AppendUint64(dst, h)
	}
	return dst
}

// treeUvarint reads one uvarint field, rejecting truncation.
func treeUvarint(data []byte, what string) (uint64, []byte, error) {
	v, used := binary.Uvarint(data)
	if used <= 0 {
		return 0, nil, fmt.Errorf("encoding: tree frame: bad %s", what)
	}
	return v, data[used:], nil
}

// decodeTreeCoord reads and validates the (stripe, depth, level, path)
// prefix shared by node and leaf-run elements. leaf selects the level bound:
// a node must have children below it (level < depth), a leaf run may sit at
// the bottom (level <= depth).
func decodeTreeCoord(data []byte, fanout, maxStripe int, leaf bool) (stripe, depth, level int, path uint64, rest []byte, err error) {
	s64, data, err := treeUvarint(data, "stripe")
	if err != nil {
		return 0, 0, 0, 0, nil, err
	}
	if s64 >= uint64(maxStripe) {
		return 0, 0, 0, 0, nil, fmt.Errorf("encoding: tree frame: stripe %d out of range of %d", s64, maxStripe)
	}
	d64, data, err := treeUvarint(data, "depth")
	if err != nil {
		return 0, 0, 0, 0, nil, err
	}
	if !ValidTreeShape(fanout, int(d64)) {
		return 0, 0, 0, 0, nil, fmt.Errorf("encoding: tree frame: bad shape fanout=%d depth=%d", fanout, d64)
	}
	l64, data, err := treeUvarint(data, "level")
	if err != nil {
		return 0, 0, 0, 0, nil, err
	}
	bound := d64
	if !leaf {
		bound = d64 - 1 // a node's children live at level+1 <= depth
	}
	if l64 > bound {
		return 0, 0, 0, 0, nil, fmt.Errorf("encoding: tree frame: level %d exceeds depth %d", l64, d64)
	}
	path, data, err = treeUvarint(data, "path")
	if err != nil {
		return 0, 0, 0, 0, nil, err
	}
	if shift := uint(l64) * uint(TreeFanoutBits(fanout)); shift < 64 && path>>shift != 0 {
		return 0, 0, 0, 0, nil, fmt.Errorf("encoding: tree frame: path %#x too wide for level %d", path, l64)
	}
	return int(s64), int(d64), int(l64), path, data, nil
}

// DecodeTreeNode parses one node element from the front of data, returning
// the bytes consumed. fanout is the frame-level fanout (already validated by
// the caller); maxStripe bounds the stripe field. Padding bits of the bitmap
// beyond fanout must be zero, and exactly popcount(Bitmap) hashes must be
// present — a hostile frame errors before anything unbounded is allocated.
func DecodeTreeNode(data []byte, fanout, maxStripe int) (TreeNode, int, error) {
	total := len(data)
	stripe, depth, level, path, data, err := decodeTreeCoord(data, fanout, maxStripe, false)
	if err != nil {
		return TreeNode{}, 0, err
	}
	nb := TreeBitmapLen(fanout)
	if len(data) < nb {
		return TreeNode{}, 0, errors.New("encoding: tree frame: truncated bitmap")
	}
	bm := append([]byte(nil), data[:nb]...)
	data = data[nb:]
	set := 0
	for i, b := range bm {
		set += bits.OnesCount8(b)
		if hi := (i + 1) * 8; hi > fanout && b>>(8-(hi-fanout)) != 0 {
			return TreeNode{}, 0, errors.New("encoding: tree frame: bitmap padding bits set")
		}
	}
	if len(data) < 8*set {
		return TreeNode{}, 0, errors.New("encoding: tree frame: truncated hashes")
	}
	hashes := make([]uint64, set)
	for i := range hashes {
		hashes[i] = binary.BigEndian.Uint64(data[8*i:])
	}
	data = data[8*set:]
	return TreeNode{
		Stripe: stripe, Depth: depth, Level: level, Path: path,
		Bitmap: bm, Hashes: hashes,
	}, total - len(data), nil
}

// LeafRun is one leaf digest-run frame element: a node coordinate plus the
// digests whose tree positions fall under that node, in (position, key)
// order.
type LeafRun struct {
	Stripe  int
	Depth   int
	Level   int
	Path    uint64
	Digests []Digest
}

// AppendLeafRun appends one leaf run: the coordinate prefix, a digest count,
// then the digests (AppendDigest).
func AppendLeafRun(dst []byte, r LeafRun) []byte {
	dst = binary.AppendUvarint(dst, uint64(r.Stripe))
	dst = binary.AppendUvarint(dst, uint64(r.Depth))
	dst = binary.AppendUvarint(dst, uint64(r.Level))
	dst = binary.AppendUvarint(dst, r.Path)
	dst = binary.AppendUvarint(dst, uint64(len(r.Digests)))
	for _, d := range r.Digests {
		dst = AppendDigest(dst, d)
	}
	return dst
}

// DecodeLeafRun parses one leaf run from the front of data, returning the
// bytes consumed. The digest preallocation is bounded by the bytes present,
// so a hostile count cannot force a huge allocation.
func DecodeLeafRun(data []byte, fanout, maxStripe int) (LeafRun, int, error) {
	total := len(data)
	stripe, depth, level, path, data, err := decodeTreeCoord(data, fanout, maxStripe, true)
	if err != nil {
		return LeafRun{}, 0, err
	}
	count, data, err := treeUvarint(data, "digest count")
	if err != nil {
		return LeafRun{}, 0, err
	}
	capped := count
	if capped > uint64(len(data)) { // every digest takes >= 1 byte
		capped = uint64(len(data))
	}
	ds := make([]Digest, 0, capped)
	for i := uint64(0); i < count; i++ {
		d, n, err := DecodeDigest(data)
		if err != nil {
			return LeafRun{}, 0, err
		}
		data = data[n:]
		ds = append(ds, d)
	}
	return LeafRun{
		Stripe: stripe, Depth: depth, Level: level, Path: path, Digests: ds,
	}, total - len(data), nil
}

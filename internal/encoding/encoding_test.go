package encoding

import (
	"bytes"
	"math/rand"
	"testing"

	"versionstamp/internal/core"
	"versionstamp/internal/trie"
)

// randomStamps builds a reachable frontier of stamps for round-trip tests.
func randomStamps(rng *rand.Rand, ops int) []core.Stamp {
	frontier := []core.Stamp{core.Seed()}
	for k := 0; k < ops; k++ {
		switch op := rng.Intn(3); {
		case op == 0:
			i := rng.Intn(len(frontier))
			frontier[i] = frontier[i].Update()
		case op == 1 || len(frontier) == 1:
			i := rng.Intn(len(frontier))
			a, b := frontier[i].Fork()
			frontier[i] = a
			frontier = append(frontier, b)
		default:
			i, j := rng.Intn(len(frontier)), rng.Intn(len(frontier))
			if i == j {
				continue
			}
			joined, err := core.JoinNoReduce(frontier[i], frontier[j])
			if err != nil {
				continue
			}
			frontier[i] = joined
			frontier = append(frontier[:j], frontier[j+1:]...)
		}
	}
	return frontier
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 20; iter++ {
		for _, s := range randomStamps(rng, 60) {
			data, err := MarshalJSON(s)
			if err != nil {
				t.Fatalf("MarshalJSON(%v): %v", s, err)
			}
			back, err := UnmarshalJSON(data)
			if err != nil {
				t.Fatalf("UnmarshalJSON(%s): %v", data, err)
			}
			if !back.Equal(s) {
				t.Fatalf("JSON round trip %v -> %v", s, back)
			}
		}
	}
}

func TestJSONShape(t *testing.T) {
	data, err := MarshalJSON(core.MustParse("[1|0+1]"))
	if err != nil {
		t.Fatal(err)
	}
	want := `{"update":"1","id":"0+1"}`
	if string(data) != want {
		t.Errorf("JSON = %s, want %s", data, want)
	}
}

func TestJSONRejects(t *testing.T) {
	bad := []string{
		`{`,
		`{"update":"x","id":"0"}`,
		`{"update":"1","id":"0+01"}`, // id not an antichain
		`{"update":"1","id":"0"}`,    // I1 violated
	}
	for _, in := range bad {
		if _, err := UnmarshalJSON([]byte(in)); err == nil {
			t.Errorf("UnmarshalJSON(%s) accepted invalid input", in)
		}
	}
}

func TestCompactRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 20; iter++ {
		for _, s := range randomStamps(rng, 60) {
			data := MarshalCompact(s)
			back, used, err := UnmarshalCompact(data)
			if err != nil {
				t.Fatalf("UnmarshalCompact(%v): %v", s, err)
			}
			if used != len(data) {
				t.Fatalf("consumed %d of %d bytes", used, len(data))
			}
			if !back.Equal(s) {
				t.Fatalf("compact round trip %v -> %v", s, back)
			}
		}
	}
}

func TestCompactRejects(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x01},       // wrong format byte
		{0x02},       // truncated
		{0x02, 0x01}, // truncated trie
	}
	for _, data := range cases {
		if _, _, err := UnmarshalCompact(data); err == nil {
			t.Errorf("UnmarshalCompact(%x) accepted invalid input", data)
		}
	}
}

func TestMeasure(t *testing.T) {
	s := core.MustParse("[1|0+1]")
	sz := Measure(s)
	if sz.Flat <= 0 || sz.Compact <= 0 || sz.Text <= 0 || sz.JSON <= 0 {
		t.Fatalf("Measure = %+v", sz)
	}
	if sz.Text != len("[1|0+1]") {
		t.Errorf("Text size = %d", sz.Text)
	}
	if sz.JSON <= sz.Text {
		t.Errorf("JSON (%d) should exceed bare text (%d)", sz.JSON, sz.Text)
	}
}

func TestCompactBeatsFlatOnBushyStamps(t *testing.T) {
	// A wide full-level id is the compact format's best case.
	s := core.MustParse("[ε|000+001+010+011+100+101+110+111]")
	sz := Measure(s)
	if sz.Compact >= sz.Flat {
		t.Errorf("compact (%d B) not smaller than flat (%d B) for %v", sz.Compact, sz.Flat, s)
	}
}

// TestCompactBytesMatchTrieReference is the wire-stability property of the
// interned kernel: AppendCompact serves each component's cached intern key,
// and those bytes must be identical to encoding the component tries directly
// (the pre-interning construction). Digest and entry frames, snapshots and
// the v2/v3 protocols all embed this format, so byte equality here pins the
// whole wire surface.
func TestCompactBytesMatchTrieReference(t *testing.T) {
	reference := func(s core.Stamp) []byte {
		out := []byte{0x02} // compactFormat
		out = append(out, trie.FromName(s.UpdateName()).Encode()...)
		return append(out, trie.FromName(s.IDName()).Encode()...)
	}
	rng := rand.New(rand.NewSource(5))
	frontier := []core.Stamp{core.Seed()}
	check := func(s core.Stamp) {
		t.Helper()
		got := MarshalCompact(s)
		want := reference(s)
		if !bytes.Equal(got, want) {
			t.Fatalf("MarshalCompact(%v) = % x, trie reference % x", s, got, want)
		}
		back, used, err := UnmarshalCompact(got)
		if err != nil || used != len(got) || !back.Equal(s) {
			t.Fatalf("round trip of %v: %v (used %d) err %v", s, back, used, err)
		}
	}
	for k := 0; k < 300; k++ {
		switch op := rng.Intn(3); {
		case op == 0:
			i := rng.Intn(len(frontier))
			frontier[i] = frontier[i].Update()
		case op == 1 || len(frontier) == 1:
			i := rng.Intn(len(frontier))
			a, b := frontier[i].Fork()
			frontier[i] = a
			frontier = append(frontier, b)
		default:
			i, j := rng.Intn(len(frontier)), rng.Intn(len(frontier))
			if i == j {
				continue
			}
			if joined, err := core.Join(frontier[i], frontier[j]); err == nil {
				frontier[i] = joined
				frontier = append(frontier[:j], frontier[j+1:]...)
			}
		}
		for _, s := range frontier {
			check(s)
		}
	}
}

// TestAppendCompactAllocationFree: marshaling an interned stamp into a
// pre-sized buffer must not allocate — the per-digest cost of every summary
// recompute and wire frame build.
func TestAppendCompactAllocationFree(t *testing.T) {
	s := core.Seed().Update()
	a, _ := s.Fork()
	buf := make([]byte, 0, 64)
	if allocs := testing.AllocsPerRun(500, func() {
		buf = AppendCompact(buf[:0], a)
	}); allocs != 0 {
		t.Errorf("AppendCompact allocates %.1f/op, want 0", allocs)
	}
}

package encoding

import (
	"testing"

	"versionstamp/internal/core"
)

// forkedPair returns the two sides of one updated seed — equivalent copies
// with distinct id components, the shape every synced key has.
func forkedPair() (core.Stamp, core.Stamp) {
	return core.Seed().Update().Fork()
}

func TestSummarizeEquivalentCopiesMatch(t *testing.T) {
	var mine, theirs []Digest
	for _, k := range []string{"alpha", "beta", "gamma"} {
		a, b := forkedPair()
		if !a.Equivalent(b) {
			t.Fatalf("forked pair not equivalent")
		}
		mine = append(mine, Digest{Key: k, Stamp: a})
		theirs = append(theirs, Digest{Key: k, Stamp: b})
	}
	if SummarizeDigests(mine) != SummarizeDigests(theirs) {
		t.Error("equivalent stripes summarize differently")
	}
}

func TestSummarizeDivergenceDetected(t *testing.T) {
	a, b := forkedPair()
	base := []Digest{{Key: "k", Stamp: a}}
	moved := []Digest{{Key: "k", Stamp: b.Update()}}
	if SummarizeDigests(base) == SummarizeDigests(moved) {
		t.Error("an updated copy summarized as unchanged")
	}
	// A key present on one side only must also show.
	if SummarizeDigests(base) == SummarizeDigests(nil) {
		t.Error("non-empty stripe summarized as empty")
	}
	extra := append(append([]Digest(nil), base...), Digest{Key: "k2", Stamp: a})
	if SummarizeDigests(base) == SummarizeDigests(extra) {
		t.Error("extra key summarized as unchanged")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if SummarizeDigests(nil) != EmptySummary {
		t.Errorf("empty summary = %d, want EmptySummary", SummarizeDigests(nil))
	}
}

func TestAppendCompactMatchesMarshal(t *testing.T) {
	s := core.Seed().Update()
	a, _ := s.Fork()
	for _, st := range []core.Stamp{s, a, a.Update()} {
		got := AppendCompact(nil, st)
		want := MarshalCompact(st)
		if string(got) != string(want) {
			t.Errorf("AppendCompact = %x, MarshalCompact = %x", got, want)
		}
		// And the appended form decodes back to an equal stamp.
		dec, used, err := UnmarshalCompact(got)
		if err != nil || used != len(got) || !dec.Equal(st) {
			t.Errorf("round trip failed: %v used=%d", err, used)
		}
	}
}

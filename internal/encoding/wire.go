package encoding

import (
	"encoding/binary"
	"fmt"

	"versionstamp/internal/core"
)

// This file defines the length-prefixed binary codec the delta anti-entropy
// protocol ships entries with. Both shapes reuse the compact (trie-structural)
// stamp format, so a converged keyspace costs a few bytes per key on the wire
// instead of a JSON document with text stamps.
//
//	digest := uvarint(len(key)) key compact-stamp
//	entry  := uvarint(len(key)) key flags [uvarint(len(value)) value] compact-stamp
//
// flags bit 0 marks a tombstone; tombstones carry no value field.

// entryFlagDeleted marks a tombstone entry (no value field follows).
const entryFlagDeleted = 0x01

// maxKeyLen bounds decoded key sizes so a corrupt length prefix cannot force
// a huge allocation.
const maxKeyLen = 1 << 20

// maxValueLen bounds decoded value sizes for the same reason.
const maxValueLen = 1 << 30

// Digest is the phase-1 wire shape of one key: the key and its copy's stamp,
// no value. Comparing digests decides equivalence without moving data.
type Digest struct {
	Key   string
	Stamp core.Stamp
}

// Entry is the phase-2 wire shape of one key: the full stored copy.
type Entry struct {
	Key     string
	Value   []byte
	Deleted bool
	Stamp   core.Stamp
}

// AppendDigest appends the length-prefixed binary form of d.
func AppendDigest(dst []byte, d Digest) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(d.Key)))
	dst = append(dst, d.Key...)
	return AppendCompact(dst, d.Stamp)
}

// DecodeDigest parses one digest from the front of data, returning the bytes
// consumed.
func DecodeDigest(data []byte) (Digest, int, error) {
	key, off, err := decodeKey(data)
	if err != nil {
		return Digest{}, 0, fmt.Errorf("encoding: digest: %w", err)
	}
	s, used, err := UnmarshalCompact(data[off:])
	if err != nil {
		return Digest{}, 0, fmt.Errorf("encoding: digest %q: %w", key, err)
	}
	return Digest{Key: key, Stamp: s}, off + used, nil
}

// AppendEntry appends the length-prefixed binary form of e.
func AppendEntry(dst []byte, e Entry) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(e.Key)))
	dst = append(dst, e.Key...)
	if e.Deleted {
		dst = append(dst, entryFlagDeleted)
	} else {
		dst = append(dst, 0)
		dst = binary.AppendUvarint(dst, uint64(len(e.Value)))
		dst = append(dst, e.Value...)
	}
	return AppendCompact(dst, e.Stamp)
}

// EntryValueOffset returns the byte offset of e's value bytes within the
// encoding AppendEntry produces: past the uvarint key prefix, the key, the
// flags byte and the uvarint value length. Meaningless for tombstones,
// which encode no value field.
func EntryValueOffset(e Entry) int {
	return uvarintLen(uint64(len(e.Key))) + len(e.Key) + 1 + uvarintLen(uint64(len(e.Value)))
}

// uvarintLen is the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// DecodeEntryMeta parses one entry from the front of data like DecodeEntry,
// but does not copy the value bytes: the returned entry has a nil Value, and
// valOff/valLen locate the value field within data (valOff = -1 for
// tombstones, which encode none). This is the decoder of paged restarts —
// the caller keeps keys, stamps and value locations resident and leaves the
// bytes where they are.
func DecodeEntryMeta(data []byte) (e Entry, valOff, valLen, used int, err error) {
	key, off, err := decodeKey(data)
	if err != nil {
		return Entry{}, 0, 0, 0, fmt.Errorf("encoding: entry: %w", err)
	}
	if off >= len(data) {
		return Entry{}, 0, 0, 0, fmt.Errorf("encoding: entry %q: truncated flags", key)
	}
	flags := data[off]
	off++
	e = Entry{Key: key}
	valOff = -1
	switch flags {
	case entryFlagDeleted:
		e.Deleted = true
	case 0:
		n, u := binary.Uvarint(data[off:])
		if u <= 0 || n > maxValueLen {
			return Entry{}, 0, 0, 0, fmt.Errorf("encoding: entry %q: bad value length", key)
		}
		off += u
		if uint64(len(data)-off) < n {
			return Entry{}, 0, 0, 0, fmt.Errorf("encoding: entry %q: truncated value", key)
		}
		valOff, valLen = off, int(n)
		off += int(n)
	default:
		return Entry{}, 0, 0, 0, fmt.Errorf("encoding: entry %q: unknown flags 0x%02x", key, flags)
	}
	s, u, err := UnmarshalCompact(data[off:])
	if err != nil {
		return Entry{}, 0, 0, 0, fmt.Errorf("encoding: entry %q: %w", key, err)
	}
	e.Stamp = s
	return e, valOff, valLen, off + u, nil
}

// DecodeEntry parses one entry from the front of data, returning the bytes
// consumed.
func DecodeEntry(data []byte) (Entry, int, error) {
	key, off, err := decodeKey(data)
	if err != nil {
		return Entry{}, 0, fmt.Errorf("encoding: entry: %w", err)
	}
	if off >= len(data) {
		return Entry{}, 0, fmt.Errorf("encoding: entry %q: truncated flags", key)
	}
	flags := data[off]
	off++
	e := Entry{Key: key}
	switch flags {
	case entryFlagDeleted:
		e.Deleted = true
	case 0:
		n, used := binary.Uvarint(data[off:])
		if used <= 0 || n > maxValueLen {
			return Entry{}, 0, fmt.Errorf("encoding: entry %q: bad value length", key)
		}
		off += used
		if uint64(len(data)-off) < n {
			return Entry{}, 0, fmt.Errorf("encoding: entry %q: truncated value", key)
		}
		e.Value = append([]byte(nil), data[off:off+int(n)]...)
		off += int(n)
	default:
		return Entry{}, 0, fmt.Errorf("encoding: entry %q: unknown flags 0x%02x", key, flags)
	}
	s, used, err := UnmarshalCompact(data[off:])
	if err != nil {
		return Entry{}, 0, fmt.Errorf("encoding: entry %q: %w", key, err)
	}
	e.Stamp = s
	return e, off + used, nil
}

// decodeKey parses a uvarint-prefixed key from the front of data.
func decodeKey(data []byte) (string, int, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 || n > maxKeyLen {
		return "", 0, fmt.Errorf("bad key length")
	}
	off := used
	if uint64(len(data)-off) < n {
		return "", 0, fmt.Errorf("truncated key")
	}
	return string(data[off : off+int(n)]), off + int(n), nil
}

// Package encoding provides interchange formats for version stamps beyond
// the canonical ones built into internal/core:
//
//   - a JSON representation (human-readable, for config files, HTTP APIs and
//     the example applications);
//   - a compact binary format that serializes both stamp components as
//     structural tries (internal/trie), which shares prefixes and is the
//     densest format for bushy ids (the E5 size experiments compare all
//     three formats).
//
// All decoders re-validate what they read: no format can smuggle in a
// non-antichain component or an I1 violation.
package encoding

import (
	"encoding/json"
	"fmt"

	"versionstamp/internal/core"
	"versionstamp/internal/name"
	"versionstamp/internal/trie"
)

// StampJSON is the JSON shape of a stamp: both components in the paper's
// sum-of-binary-strings notation.
//
//	{"update": "1", "id": "0+1"}
type StampJSON struct {
	Update string `json:"update"`
	ID     string `json:"id"`
}

// MarshalJSON serializes a stamp to JSON.
func MarshalJSON(s core.Stamp) ([]byte, error) {
	return json.Marshal(StampJSON{
		Update: s.UpdateName().String(),
		ID:     s.IDName().String(),
	})
}

// UnmarshalJSON parses and validates a stamp from JSON.
func UnmarshalJSON(data []byte) (core.Stamp, error) {
	var sj StampJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return core.Stamp{}, fmt.Errorf("encoding: %w", err)
	}
	u, err := name.Parse(sj.Update)
	if err != nil {
		return core.Stamp{}, fmt.Errorf("encoding: update component: %w", err)
	}
	i, err := name.Parse(sj.ID)
	if err != nil {
		return core.Stamp{}, fmt.Errorf("encoding: id component: %w", err)
	}
	return core.New(u, i)
}

// compactFormat tags the trie-structural stamp format.
const compactFormat = 0x02

// MarshalCompact serializes a stamp in the trie-structural format: a format
// byte followed by the trie encodings of the update and id components.
func MarshalCompact(s core.Stamp) []byte {
	return AppendCompact(make([]byte, 0, 16), s)
}

// AppendCompact appends the trie-structural format of s to dst — the
// buffer-reusing form of MarshalCompact for encoders that build frames
// incrementally. The component encodings are the stamp handles' cached
// intern keys, so nothing is walked or rebuilt; the bytes are identical to
// encoding the components' tries directly (the intern key is canonical).
func AppendCompact(dst []byte, s core.Stamp) []byte {
	dst = append(dst, compactFormat)
	dst = s.UpdateHandle().AppendEncoding(dst)
	return s.IDHandle().AppendEncoding(dst)
}

// AppendUpdateTrie appends the trie encoding of the stamp's update component
// alone. Compare relates stamps by their update components only, so this is
// the part of a stamp that two equivalent copies share byte for byte — the
// input stripe summaries hash over (the id components always differ between
// replicas, every transfer forks them). Served from the handle's cached
// encoding: summary recomputes after an epoch bump re-encode no tries.
func AppendUpdateTrie(dst []byte, s core.Stamp) []byte {
	return s.UpdateHandle().AppendEncoding(dst)
}

// UnmarshalCompact parses and validates a stamp from the trie-structural
// format, returning the number of bytes consumed. Both components intern on
// arrival (trie.InternEncoded): a component already known to the process —
// every component, once two replicas have converged — costs a map probe on
// the raw wire bytes, builds nothing, and yields the same handle the local
// copies already hold, so downstream comparison is pointer equality.
func UnmarshalCompact(data []byte) (core.Stamp, int, error) {
	if len(data) == 0 || data[0] != compactFormat {
		return core.Stamp{}, 0, fmt.Errorf("encoding: not a compact stamp")
	}
	off := 1
	u, used, err := trie.InternEncoded(data[off:])
	if err != nil {
		return core.Stamp{}, 0, fmt.Errorf("encoding: update component: %w", err)
	}
	off += used
	i, used, err := trie.InternEncoded(data[off:])
	if err != nil {
		return core.Stamp{}, 0, fmt.Errorf("encoding: id component: %w", err)
	}
	off += used
	s, err := core.NewInterned(u, i)
	if err != nil {
		return core.Stamp{}, 0, err
	}
	return s, off, nil
}

// Sizes reports the encoded size of one stamp under every format, the
// measurement behind experiment E5's format comparison.
type Sizes struct {
	// Flat is the canonical per-string binary format (core.MarshalBinary).
	Flat int
	// Compact is the trie-structural format (MarshalCompact).
	Compact int
	// Text is the paper notation (core.String).
	Text int
	// JSON is the JSON representation.
	JSON int
}

// Measure computes all format sizes for a stamp.
func Measure(s core.Stamp) Sizes {
	j, _ := MarshalJSON(s)
	return Sizes{
		Flat:    s.EncodedSize(),
		Compact: len(MarshalCompact(s)),
		Text:    len(s.String()),
		JSON:    len(j),
	}
}

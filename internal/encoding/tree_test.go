package encoding

import (
	"bytes"
	"testing"

	"versionstamp/internal/core"
)

func TestValidTreeShape(t *testing.T) {
	valid := [][2]int{{2, 1}, {16, 1}, {16, 8}, {64, 10}, {2, 12}, {16, 12}}
	for _, s := range valid {
		if !ValidTreeShape(s[0], s[1]) {
			t.Errorf("ValidTreeShape(%d, %d) = false, want true", s[0], s[1])
		}
	}
	invalid := [][2]int{
		{0, 1}, {1, 1}, {3, 2}, {128, 1}, {16, 0}, {16, -1}, {16, 13},
		{64, 11}, // 11×6 = 66 position bits > 64
		{-16, 2},
	}
	for _, s := range invalid {
		if ValidTreeShape(s[0], s[1]) {
			t.Errorf("ValidTreeShape(%d, %d) = true, want false", s[0], s[1])
		}
	}
}

func TestBitmapHelpers(t *testing.T) {
	for _, fanout := range []int{2, 8, 16, 64} {
		bm := make([]byte, TreeBitmapLen(fanout))
		for c := 0; c < fanout; c += 3 {
			BitmapSet(bm, c)
		}
		for c := 0; c < fanout; c++ {
			if got, want := BitmapGet(bm, c), c%3 == 0; got != want {
				t.Fatalf("fanout %d bit %d = %v, want %v", fanout, c, got, want)
			}
		}
	}
}

func testStamp(t *testing.T) core.Stamp {
	t.Helper()
	return core.Seed().Update()
}

func TestTreeNodeRoundtrip(t *testing.T) {
	const fanout = 16
	bm := make([]byte, TreeBitmapLen(fanout))
	BitmapSet(bm, 0)
	BitmapSet(bm, 7)
	BitmapSet(bm, 15)
	node := TreeNode{
		Stripe: 3, Depth: 4, Level: 2, Path: 0x47,
		Bitmap: bm, Hashes: []uint64{1, 1 << 40, ^uint64(0)},
	}
	buf := AppendTreeNode(nil, node)
	got, used, err := DecodeTreeNode(buf, fanout, 32)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(buf) {
		t.Fatalf("used %d of %d bytes", used, len(buf))
	}
	if got.Stripe != node.Stripe || got.Depth != node.Depth ||
		got.Level != node.Level || got.Path != node.Path {
		t.Fatalf("coords: got %+v, want %+v", got, node)
	}
	if !bytes.Equal(got.Bitmap, node.Bitmap) {
		t.Fatalf("bitmap: got %x, want %x", got.Bitmap, node.Bitmap)
	}
	if len(got.Hashes) != 3 || got.Hashes[0] != 1 || got.Hashes[2] != ^uint64(0) {
		t.Fatalf("hashes: got %v", got.Hashes)
	}
}

func TestDecodeTreeNodeRejects(t *testing.T) {
	const fanout = 16
	good := AppendTreeNode(nil, TreeNode{
		Stripe: 1, Depth: 3, Level: 1, Path: 5,
		Bitmap: make([]byte, TreeBitmapLen(fanout)),
	})
	cases := map[string][]byte{
		"empty":      nil,
		"truncated":  good[:len(good)-1],
		"bad stripe": AppendTreeNode(nil, TreeNode{Stripe: 99, Depth: 3, Level: 1, Bitmap: make([]byte, 2)}),
		"level at depth": AppendTreeNode(nil, TreeNode{
			Stripe: 1, Depth: 3, Level: 3, Bitmap: make([]byte, 2)}),
		"path beyond level": AppendTreeNode(nil, TreeNode{
			Stripe: 1, Depth: 3, Level: 1, Path: 16, Bitmap: make([]byte, 2)}),
	}
	for name, buf := range cases {
		if _, _, err := DecodeTreeNode(buf, fanout, 32); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// Padding bits beyond the fan-out must be zero (fanout 2: 6 spare bits).
	pad := AppendTreeNode(nil, TreeNode{Stripe: 1, Depth: 3, Level: 1, Path: 1,
		Bitmap: []byte{0x80}})
	if _, _, err := DecodeTreeNode(pad, 2, 32); err == nil {
		t.Error("padding bits set: decoded without error")
	}
}

func TestLeafRunRoundtrip(t *testing.T) {
	st := testStamp(t)
	run := LeafRun{
		Stripe: 7, Depth: 3, Level: 3, Path: 0x123,
		Digests: []Digest{{Key: "a", Stamp: st}, {Key: "bb", Stamp: st}},
	}
	buf := AppendLeafRun(nil, run)
	got, used, err := DecodeLeafRun(buf, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(buf) {
		t.Fatalf("used %d of %d bytes", used, len(buf))
	}
	if got.Stripe != run.Stripe || got.Depth != run.Depth ||
		got.Level != run.Level || got.Path != run.Path {
		t.Fatalf("coords: got %+v", got)
	}
	if len(got.Digests) != 2 || got.Digests[0].Key != "a" || got.Digests[1].Key != "bb" {
		t.Fatalf("digests: got %v", got.Digests)
	}
	for _, d := range got.Digests {
		if !d.Stamp.Leq(st) || !st.Leq(d.Stamp) {
			t.Fatalf("digest %q stamp did not round-trip", d.Key)
		}
	}
}

func TestTreePosDeterministic(t *testing.T) {
	if TreePos("hello") != TreePos("hello") {
		t.Fatal("TreePos not deterministic")
	}
	if TreePos("a") == TreePos("b") {
		t.Fatal("TreePos(a) == TreePos(b): suspicious for FNV-64a")
	}
}

// FuzzDecodeTreeNode feeds hostile bytes to the tree-node decoder: it must
// error or return a structurally valid node, never panic or allocate
// unbounded memory (hash counts are pinned to the bitmap's population).
func FuzzDecodeTreeNode(f *testing.F) {
	bm := make([]byte, TreeBitmapLen(16))
	BitmapSet(bm, 3)
	f.Add(AppendTreeNode(nil, TreeNode{Stripe: 1, Depth: 3, Level: 1, Path: 2,
		Bitmap: bm, Hashes: []uint64{42}}), 16, 32)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, 64, 65536)
	f.Add([]byte{0}, 2, 1)
	f.Fuzz(func(t *testing.T, data []byte, fanout, maxStripe int) {
		node, used, err := DecodeTreeNode(data, fanout, maxStripe)
		if err != nil {
			return
		}
		if used <= 0 || used > len(data) {
			t.Fatalf("used %d of %d bytes", used, len(data))
		}
		if len(node.Bitmap) != TreeBitmapLen(fanout) {
			t.Fatalf("bitmap length %d for fanout %d", len(node.Bitmap), fanout)
		}
		pop := 0
		for c := 0; c < fanout; c++ {
			if BitmapGet(node.Bitmap, c) {
				pop++
			}
		}
		if len(node.Hashes) != pop {
			t.Fatalf("%d hashes for %d set bits", len(node.Hashes), pop)
		}
	})
}

// FuzzDecodeLeafRun feeds hostile bytes to the leaf-run decoder: declared
// digest counts must never make it allocate past the input's own size.
func FuzzDecodeLeafRun(f *testing.F) {
	f.Add([]byte{1, 3, 3, 0, 0}, 16, 32)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x0f, 0, 0, 0}, 2, 4)
	f.Fuzz(func(t *testing.T, data []byte, fanout, maxStripe int) {
		run, used, err := DecodeLeafRun(data, fanout, maxStripe)
		if err != nil {
			return
		}
		if used <= 0 || used > len(data) {
			t.Fatalf("used %d of %d bytes", used, len(data))
		}
		if len(run.Digests) > len(data) {
			t.Fatalf("%d digests out of %d input bytes", len(run.Digests), len(data))
		}
	})
}

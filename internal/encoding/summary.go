package encoding

import "encoding/binary"

// Stripe summaries: a fixed-size hash over a stripe's sorted digest set, the
// phase-0 currency of the hierarchical (v3) anti-entropy protocol. Two
// endpoints that agree on a stripe's summary skip the stripe's digests
// entirely, so a converged round costs O(stripes) on the wire instead of
// O(keys).
//
// The hash covers, in key order, each digest's key and the trie encoding of
// its stamp's *update component only*. Compare relates stamps by their update
// components, and equivalent copies share the update name byte for byte
// (joins hand both sides the same name; only the id component forks), so two
// converged stripes summarize identically even though no two replicas ever
// hold identical full stamps. Structurally different but semantically
// equivalent update names would only make summaries differ spuriously, which
// costs one digest exchange and never correctness.
//
// A 64-bit FNV-1a is deliberate: summaries guard honest replicas against
// recomparing converged data, not against adversaries. A colliding pair of
// divergent stripes (probability ~2^-64 per pair) would mask divergence at
// the summary phase; deployments needing stronger guarantees can fall back
// to digest (v2) rounds, which compare every key.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// EmptySummary is the summary of a stripe with no stored keys.
const EmptySummary uint64 = fnvOffset64

// fnvMix folds b into a running FNV-1a hash.
func fnvMix(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// SummarizeDigests hashes a stripe's digest set, which must be sorted by key
// (the order both endpoints agree on). The scratch buffer is reused across
// digests, so summarizing allocates only once regardless of stripe size —
// and each stamp's contribution is its handle's cached canonical encoding,
// so an epoch-bump recompute re-encodes no tries.
func SummarizeDigests(ds []Digest) uint64 {
	h := uint64(fnvOffset64)
	var scratch []byte
	for _, d := range ds {
		scratch = scratch[:0]
		scratch = binary.AppendUvarint(scratch, uint64(len(d.Key)))
		scratch = append(scratch, d.Key...)
		scratch = AppendUpdateTrie(scratch, d.Stamp)
		h = fnvMix(h, scratch)
	}
	return h
}

// RootSummarySeed starts an incremental root-hash computation (FoldSummary).
const RootSummarySeed uint64 = fnvOffset64

// FoldSummary folds one stripe summary into a running root hash begun at
// RootSummarySeed — the allocation-free incremental form of
// SummarizeSummaries for callers whose summaries are not already a []uint64.
func FoldSummary(h, sum uint64) uint64 {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], sum)
	return fnvMix(h, b[:])
}

// SummarizeSummaries condenses a whole layout's stripe summaries (in stripe
// order) into one 8-byte root hash — the second summary level: two endpoints
// that agree on the root have converged, and the round is over after ~14
// wire bytes, before even the per-stripe summaries travel.
func SummarizeSummaries(sums []uint64) uint64 {
	h := RootSummarySeed
	for _, s := range sums {
		h = FoldSummary(h, s)
	}
	return h
}

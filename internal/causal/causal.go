// Package causal implements the causal-history model of Section 2 of the
// paper: the global-view ground truth that version stamps are proven
// equivalent to.
//
// A configuration maps the elements of the current frontier to sets of
// update events. Update events carry globally unique identities (a global
// counter here), which is exactly the global view that version stamps
// eliminate; the model exists to specify correct behaviour, and the test
// suite checks mechanically that stamp comparisons agree with causal-history
// inclusion on every frontier of every trace (paper Proposition 5.1 and
// Corollary 5.2).
//
// Operations follow Definition 2.1:
//
//	update(a): {C, a ↦ A}    -> {C, a' ↦ A ∪ {e}},  e globally fresh
//	fork(a):   {C, a ↦ A}    -> {C, b ↦ A, c ↦ A}
//	join(a,b): {C, a ↦ A, b ↦ B} -> {C, c ↦ A ∪ B}
//
// Comparing frontier elements (Section 2):
//
//	a equivalent to b      iff A = B
//	a obsolete relative to b iff A ⊂ B
//	a inconsistent with b  iff A ⊄ B and B ⊄ A
package causal

import (
	"fmt"
	"sort"
	"strings"
)

// Event is a globally unique update event identity.
type Event uint64

// Elem identifies a frontier element within a System. Element identities are
// never reused, so stale handles are detected rather than misresolved.
type Elem uint64

// History is an immutable set of update events: the causal history of one
// frontier element.
type History struct {
	events map[Event]struct{}
}

// emptyHistory returns the history of a freshly created element.
func emptyHistory() History {
	return History{events: map[Event]struct{}{}}
}

// Len returns the number of events in the history.
func (h History) Len() int { return len(h.events) }

// Contains reports membership of e.
func (h History) Contains(e Event) bool {
	_, ok := h.events[e]
	return ok
}

// Events returns the events in ascending order.
func (h History) Events() []Event {
	out := make([]Event, 0, len(h.events))
	for e := range h.events {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SubsetOf reports h ⊆ g.
func (h History) SubsetOf(g History) bool {
	if len(h.events) > len(g.events) {
		return false
	}
	for e := range h.events {
		if !g.Contains(e) {
			return false
		}
	}
	return true
}

// Equal reports h = g.
func (h History) Equal(g History) bool {
	return len(h.events) == len(g.events) && h.SubsetOf(g)
}

// union returns h ∪ g as a fresh history.
func (h History) union(g History) History {
	u := make(map[Event]struct{}, len(h.events)+len(g.events))
	for e := range h.events {
		u[e] = struct{}{}
	}
	for e := range g.events {
		u[e] = struct{}{}
	}
	return History{events: u}
}

// with returns h ∪ {e} as a fresh history.
func (h History) with(e Event) History {
	u := make(map[Event]struct{}, len(h.events)+1)
	for ev := range h.events {
		u[ev] = struct{}{}
	}
	u[e] = struct{}{}
	return History{events: u}
}

// String renders the history as {e1,e2,…}.
func (h History) String() string {
	evs := h.Events()
	parts := make([]string, len(evs))
	for i, e := range evs {
		parts[i] = fmt.Sprintf("e%d", e)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Ordering mirrors the three situations of Section 2 plus equality, aligned
// with package core's Ordering for direct comparison in tests.
type Ordering int

// Ordering values; see package core for the replication-level meaning.
const (
	Equal Ordering = iota + 1
	Before
	After
	Concurrent
)

// String returns a human-readable rendering of the ordering.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return "invalid"
	}
}

// System is a causal-history configuration together with the global event
// counter — the global view the paper's Section 2 assumes.
//
// System is not safe for concurrent use; the simulator drives it from a
// single goroutine.
type System struct {
	nextEvent Event
	nextElem  Elem
	frontier  map[Elem]History
}

// NewSystem creates the initial configuration {a ↦ {}} and returns the
// system together with the sole element a.
func NewSystem() (*System, Elem) {
	s := &System{frontier: make(map[Elem]History)}
	a := s.fresh(emptyHistory())
	return s, a
}

func (s *System) fresh(h History) Elem {
	e := s.nextElem
	s.nextElem++
	s.frontier[e] = h
	return e
}

// Size returns the number of elements in the current frontier.
func (s *System) Size() int { return len(s.frontier) }

// Elems returns the frontier elements in ascending identity order.
func (s *System) Elems() []Elem {
	out := make([]Elem, 0, len(s.frontier))
	for e := range s.frontier {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// History returns the causal history of a frontier element.
func (s *System) History(a Elem) (History, error) {
	h, ok := s.frontier[a]
	if !ok {
		return History{}, fmt.Errorf("causal: element %d is not in the frontier", a)
	}
	return h, nil
}

// Update records a globally fresh update event on a, replacing a with a new
// element a' whose history is A ∪ {e}.
func (s *System) Update(a Elem) (Elem, error) {
	h, ok := s.frontier[a]
	if !ok {
		return 0, fmt.Errorf("causal: update of unknown element %d", a)
	}
	e := s.nextEvent
	s.nextEvent++
	delete(s.frontier, a)
	return s.fresh(h.with(e)), nil
}

// Fork replaces a with two elements sharing a's history.
func (s *System) Fork(a Elem) (Elem, Elem, error) {
	h, ok := s.frontier[a]
	if !ok {
		return 0, 0, fmt.Errorf("causal: fork of unknown element %d", a)
	}
	delete(s.frontier, a)
	return s.fresh(h), s.fresh(h), nil
}

// Join replaces a and b with a single element holding A ∪ B.
func (s *System) Join(a, b Elem) (Elem, error) {
	if a == b {
		return 0, fmt.Errorf("causal: join of element %d with itself", a)
	}
	ha, ok := s.frontier[a]
	if !ok {
		return 0, fmt.Errorf("causal: join of unknown element %d", a)
	}
	hb, ok := s.frontier[b]
	if !ok {
		return 0, fmt.Errorf("causal: join of unknown element %d", b)
	}
	delete(s.frontier, a)
	delete(s.frontier, b)
	return s.fresh(ha.union(hb)), nil
}

// Compare relates two frontier elements by causal-history inclusion.
func (s *System) Compare(a, b Elem) (Ordering, error) {
	ha, err := s.History(a)
	if err != nil {
		return 0, err
	}
	hb, err := s.History(b)
	if err != nil {
		return 0, err
	}
	ab, ba := ha.SubsetOf(hb), hb.SubsetOf(ha)
	switch {
	case ab && ba:
		return Equal, nil
	case ab:
		return Before, nil
	case ba:
		return After, nil
	default:
		return Concurrent, nil
	}
}

// SubsetOfUnion reports C(x) ⊆ ∪ C[S], the left-hand side of the paper's
// Proposition 5.1, for the frontier element x and a set S of frontier
// elements.
func (s *System) SubsetOfUnion(x Elem, set []Elem) (bool, error) {
	hx, err := s.History(x)
	if err != nil {
		return false, err
	}
	union := emptyHistory()
	for _, y := range set {
		hy, err := s.History(y)
		if err != nil {
			return false, err
		}
		union = union.union(hy)
	}
	return hx.SubsetOf(union), nil
}

// TotalEvents returns how many update events the system has minted; each is
// globally unique, which is precisely the global view stamps avoid.
func (s *System) TotalEvents() uint64 { return uint64(s.nextEvent) }

package causal

import (
	"math/rand"
	"testing"
)

func TestInitialConfiguration(t *testing.T) {
	s, a := NewSystem()
	if s.Size() != 1 {
		t.Fatalf("initial frontier size = %d, want 1", s.Size())
	}
	h, err := s.History(a)
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	if h.Len() != 0 {
		t.Errorf("initial history = %v, want {}", h)
	}
	if h.String() != "{}" {
		t.Errorf("String = %q", h.String())
	}
}

func TestUpdateAddsFreshEvent(t *testing.T) {
	s, a := NewSystem()
	a1, err := s.Update(a)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if _, err := s.History(a); err == nil {
		t.Error("old element must leave the frontier")
	}
	h1, _ := s.History(a1)
	if h1.Len() != 1 {
		t.Fatalf("history after update = %v", h1)
	}
	a2, _ := s.Update(a1)
	h2, _ := s.History(a2)
	if h2.Len() != 2 {
		t.Fatalf("history after two updates = %v", h2)
	}
	if !h1.SubsetOf(h2) || h2.SubsetOf(h1) {
		t.Error("updates must strictly grow the history")
	}
	if s.TotalEvents() != 2 {
		t.Errorf("TotalEvents = %d, want 2", s.TotalEvents())
	}
}

func TestForkSharesHistory(t *testing.T) {
	s, a := NewSystem()
	a, _ = s.Update(a)
	b, c, err := s.Fork(a)
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	hb, _ := s.History(b)
	hc, _ := s.History(c)
	if !hb.Equal(hc) {
		t.Errorf("fork results differ: %v vs %v", hb, hc)
	}
	if s.Size() != 2 {
		t.Errorf("frontier size = %d, want 2", s.Size())
	}
}

func TestJoinUnionsHistories(t *testing.T) {
	s, a := NewSystem()
	b, c, _ := s.Fork(a)
	b, _ = s.Update(b)
	c, _ = s.Update(c)
	j, err := s.Join(b, c)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	hj, _ := s.History(j)
	if hj.Len() != 2 {
		t.Errorf("joined history = %v, want two events", hj)
	}
	if s.Size() != 1 {
		t.Errorf("frontier size = %d, want 1", s.Size())
	}
}

func TestJoinSelfRejected(t *testing.T) {
	s, a := NewSystem()
	if _, err := s.Join(a, a); err == nil {
		t.Error("join of an element with itself must fail")
	}
}

func TestStaleHandlesRejected(t *testing.T) {
	s, a := NewSystem()
	a1, _ := s.Update(a)
	if _, err := s.Update(a); err == nil {
		t.Error("stale update must fail")
	}
	if _, _, err := s.Fork(a); err == nil {
		t.Error("stale fork must fail")
	}
	if _, err := s.Join(a, a1); err == nil {
		t.Error("stale join must fail")
	}
	if _, err := s.Compare(a, a1); err == nil {
		t.Error("stale compare must fail")
	}
	if _, err := s.SubsetOfUnion(a, []Elem{a1}); err == nil {
		t.Error("stale subset query must fail")
	}
}

func TestCompareScenarios(t *testing.T) {
	s, a := NewSystem()
	b, c, _ := s.Fork(a)
	// Same histories: equal.
	if o, _ := s.Compare(b, c); o != Equal {
		t.Errorf("fresh siblings: %v, want equal", o)
	}
	// One update: strict dominance.
	b1, _ := s.Update(b)
	if o, _ := s.Compare(c, b1); o != Before {
		t.Errorf("stale vs updated: %v, want before", o)
	}
	if o, _ := s.Compare(b1, c); o != After {
		t.Errorf("updated vs stale: %v, want after", o)
	}
	// Updates on both sides: mutual inconsistency.
	c1, _ := s.Update(c)
	if o, _ := s.Compare(b1, c1); o != Concurrent {
		t.Errorf("independent updates: %v, want concurrent", o)
	}
}

func TestSubsetOfUnion(t *testing.T) {
	s, a := NewSystem()
	b, c, _ := s.Fork(a)
	c, cc, _ := s.Fork(c)
	b, _ = s.Update(b)
	c, _ = s.Update(c)
	// b's event is not in c ∪ cc.
	ok, err := s.SubsetOfUnion(b, []Elem{c, cc})
	if err != nil {
		t.Fatalf("SubsetOfUnion: %v", err)
	}
	if ok {
		t.Error("b ⊆ c∪cc must be false")
	}
	// cc (empty history) is inside anything.
	ok, _ = s.SubsetOfUnion(cc, []Elem{b})
	if !ok {
		t.Error("{} ⊆ C(b) must hold")
	}
	// After joining b and c, the union covers both histories.
	j, _ := s.Join(b, c)
	ok, _ = s.SubsetOfUnion(j, []Elem{j})
	if !ok {
		t.Error("reflexive subset must hold")
	}
}

func TestRandomTraceMaintainsFrontier(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, a := NewSystem()
	live := []Elem{a}
	for k := 0; k < 500; k++ {
		switch op := rng.Intn(3); {
		case op == 0:
			i := rng.Intn(len(live))
			e, err := s.Update(live[i])
			if err != nil {
				t.Fatalf("update: %v", err)
			}
			live[i] = e
		case op == 1 || len(live) == 1:
			i := rng.Intn(len(live))
			x, y, err := s.Fork(live[i])
			if err != nil {
				t.Fatalf("fork: %v", err)
			}
			live[i] = x
			live = append(live, y)
		default:
			i, j := rng.Intn(len(live)), rng.Intn(len(live))
			if i == j {
				continue
			}
			e, err := s.Join(live[i], live[j])
			if err != nil {
				t.Fatalf("join: %v", err)
			}
			live[i] = e
			live = append(live[:j], live[j+1:]...)
		}
		if s.Size() != len(live) {
			t.Fatalf("frontier size mismatch: system %d, trace %d", s.Size(), len(live))
		}
	}
	// Elems() agrees with our live set.
	got := s.Elems()
	if len(got) != len(live) {
		t.Fatalf("Elems() length %d, want %d", len(got), len(live))
	}
	seen := make(map[Elem]bool, len(live))
	for _, e := range live {
		seen[e] = true
	}
	for _, e := range got {
		if !seen[e] {
			t.Fatalf("Elems() returned unknown element %d", e)
		}
	}
}

func TestHistoryEventsSortedAndContains(t *testing.T) {
	s, a := NewSystem()
	for i := 0; i < 5; i++ {
		a, _ = s.Update(a)
	}
	h, _ := s.History(a)
	evs := h.Events()
	if len(evs) != 5 {
		t.Fatalf("Events() = %v", evs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i-1] >= evs[i] {
			t.Fatalf("Events() not sorted: %v", evs)
		}
	}
	for _, e := range evs {
		if !h.Contains(e) {
			t.Fatalf("Contains(%d) = false", e)
		}
	}
	if h.Contains(Event(999)) {
		t.Error("Contains(999) = true")
	}
}

func TestOrderingString(t *testing.T) {
	if Equal.String() != "equal" || Before.String() != "before" ||
		After.String() != "after" || Concurrent.String() != "concurrent" ||
		Ordering(0).String() != "invalid" {
		t.Error("Ordering.String incorrect")
	}
}

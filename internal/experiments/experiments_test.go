package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("IDs = %v", ids)
		}
	}
}

func TestE1MatchesPaper(t *testing.T) {
	out, err := E1()
	if err != nil {
		t.Fatalf("E1: %v", err)
	}
	if !strings.Contains(out, "measured matches: true") {
		t.Errorf("E1 does not match Figure 1:\n%s", out)
	}
	for _, vec := range []string{"[2,0,0]", "[1,0,1]"} {
		if !strings.Contains(out, vec) {
			t.Errorf("E1 missing vector %s:\n%s", vec, out)
		}
	}
}

func TestE2MatchesPaper(t *testing.T) {
	out, err := E2()
	if err != nil {
		t.Fatalf("E2: %v", err)
	}
	if !strings.Contains(out, "all stamps match the paper: true") {
		t.Errorf("E2 does not match Figure 4:\n%s", out)
	}
	for _, stamp := range []string{"[1|01+1]", "[1|00+01+1]", "[1|0+1]"} {
		if !strings.Contains(out, stamp) {
			t.Errorf("E2 missing stamp %s:\n%s", stamp, out)
		}
	}
}

func TestE3NoDisagreements(t *testing.T) {
	out, err := E3()
	if err != nil {
		t.Fatalf("E3: %v", err)
	}
	if !strings.Contains(out, "0 disagreements") {
		t.Errorf("E3 output:\n%s", out)
	}
}

func TestE4RunsChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping E4 (~25s of lockstep verification) in -short mode")
	}
	out, err := E4()
	if err != nil {
		t.Fatalf("E4: %v", err)
	}
	if !strings.Contains(out, "0 disagreements") {
		t.Errorf("E4 output:\n%s", out)
	}
	for _, wl := range []string{"balanced", "forkheavy", "syncheavy"} {
		if !strings.Contains(out, wl) {
			t.Errorf("E4 missing workload %s", wl)
		}
	}
}

func TestE5Reports(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping E5 (~5s of trace replays) in -short mode")
	}
	out, err := E5()
	if err != nil {
		t.Fatalf("E5: %v", err)
	}
	for _, wl := range []string{"forkheavy", "syncheavy", "partitioned", "fixedN=6"} {
		if !strings.Contains(out, wl) {
			t.Errorf("E5 missing workload %s:\n%s", wl, out)
		}
	}
}

func TestE6Reports(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping E6 (~1s of trace replays) in -short mode")
	}
	out, err := E6()
	if err != nil {
		t.Fatalf("E6: %v", err)
	}
	if !strings.Contains(out, "replicas-created") {
		t.Errorf("E6 output:\n%s", out)
	}
}

func TestE7Reports(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping E7 (~1s of trace replays) in -short mode")
	}
	out, err := E7()
	if err != nil {
		t.Fatalf("E7: %v", err)
	}
	if !strings.Contains(out, "itc") {
		t.Errorf("E7 output:\n%s", out)
	}
}

func TestE8Reports(t *testing.T) {
	out, err := E8()
	if err != nil {
		t.Fatalf("E8: %v", err)
	}
	if !strings.Contains(out, "dynamic-vv 10/10 failed, stamps 0/10 failed") {
		t.Errorf("E8 output:\n%s", out)
	}
}

func TestAllExperimentsViaRegistry(t *testing.T) {
	if testing.Short() {
		// ~35s: reruns every experiment end to end. The per-experiment
		// tests above cover the fast ones in short mode.
		t.Skip("skipping full experiment registry in -short mode")
	}
	for id, fn := range Registry() {
		out, err := fn()
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if len(out) == 0 {
			t.Errorf("%s: empty output", id)
		}
	}
}

// Package experiments regenerates the paper-reproduction artifacts recorded
// in EXPERIMENTS.md: one function per experiment E1–E8 of DESIGN.md, each
// returning a human-readable report whose numbers are produced live by the
// library. cmd/experiments is a thin CLI over this package.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"versionstamp/internal/core"
	"versionstamp/internal/sim"
	"versionstamp/internal/vv"
)

// Registry maps experiment ids to their implementations.
func Registry() map[string]func() (string, error) {
	return map[string]func() (string, error){
		"e1": E1,
		"e2": E2,
		"e3": E3,
		"e4": E4,
		"e5": E5,
		"e6": E6,
		"e7": E7,
		"e8": E8,
	}
}

// IDs returns the experiment ids in order.
func IDs() []string {
	ids := make([]string, 0, len(Registry()))
	for id := range Registry() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// E1 reproduces Figure 1: fixed version vectors among three replicas.
func E1() (string, error) {
	var b strings.Builder
	fmt.Fprintln(&b, "E1 — Figure 1: fixed version vectors, three replicas")
	fmt.Fprintln(&b, "step                          A          B          C")

	a, bb, c := vv.NewVector(3), vv.NewVector(3), vv.NewVector(3)
	row := func(label string) {
		fmt.Fprintf(&b, "%-24s %10s %10s %10s\n", label, a, bb, c)
	}
	row("initial")
	var err error
	if a, err = a.Update(0); err != nil {
		return "", err
	}
	row("update at A")
	if bb, err = vv.Join(bb, a); err != nil {
		return "", err
	}
	row("B syncs from A")
	if c, err = c.Update(2); err != nil {
		return "", err
	}
	row("update at C")
	m, err := vv.Join(bb, c)
	if err != nil {
		return "", err
	}
	bb, c = m.Clone(), m.Clone()
	row("B and C sync")
	if a, err = a.Update(0); err != nil {
		return "", err
	}
	row("update at A")

	ab, err := vv.Compare(a, bb)
	if err != nil {
		return "", err
	}
	bc, err := vv.Compare(bb, c)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "final: A vs B = %v (mutual inconsistency), B vs C = %v\n", ab, bc)
	fmt.Fprintf(&b, "paper: A=[2,0,0], B=C=[1,0,1]; measured matches: %v\n",
		a.String() == "[2,0,0]" && bb.String() == "[1,0,1]" && c.String() == "[1,0,1]")
	return b.String(), nil
}

// E2 reproduces Figures 2 and 4: the fork/join execution annotated with
// version stamps, including the non-reduced join results shown in the
// figure and their reduced forms.
func E2() (string, error) {
	var b strings.Builder
	fmt.Fprintln(&b, "E2 — Figures 2+4: version stamps on the fork/join execution")
	fmt.Fprintf(&b, "%-28s %-14s %s\n", "element (derivation)", "stamp", "paper")

	type rowT struct {
		label, paper string
		stamp        core.Stamp
	}
	a1 := core.Seed()
	a2 := a1.Update()
	b1, c1 := a2.Fork()
	d1, e1 := b1.Fork()
	c2 := c1.Update()
	c3 := c2.Update()
	f1, err := core.Join(e1, c3)
	if err != nil {
		return "", err
	}
	g1, err := core.JoinNoReduce(d1, f1)
	if err != nil {
		return "", err
	}
	h1, err := core.JoinNoReduce(b1, c2)
	if err != nil {
		return "", err
	}
	rows := []rowT{
		{"a1 (seed)", "[ε|ε]", a1},
		{"a2 = update(a1)", "[ε|ε]", a2},
		{"b1 (fork a2, left)", "[ε|0]", b1},
		{"c1 (fork a2, right)", "[ε|1]", c1},
		{"d1 (fork b1, left)", "[ε|00]", d1},
		{"e1 (fork b1, right)", "[ε|01]", e1},
		{"c2 = update(c1)", "[1|1]", c2},
		{"c3 = update(c2)", "[1|1]", c3},
		{"f1 = join(e1,c3)", "[1|01+1]", f1},
		{"g1 = join(d1,f1) no-reduce", "[1|00+01+1]", g1},
		{"h1 = join(b1,c2) no-reduce", "[1|0+1]", h1},
		{"g1 reduced", "[ε|ε]", g1.Reduce()},
	}
	allMatch := true
	for _, r := range rows {
		match := r.stamp.String() == r.paper
		allMatch = allMatch && match
		fmt.Fprintf(&b, "%-28s %-14s %s\n", r.label, r.stamp, r.paper)
	}
	fmt.Fprintf(&b, "all stamps match the paper: %v\n", allMatch)
	return b.String(), nil
}

// E3 reproduces Figure 3: a fixed replica set encoded under fork-and-join
// dynamics; fixed version vectors and version stamps must order every pair
// identically at every step.
func E3() (string, error) {
	var b strings.Builder
	fmt.Fprintln(&b, "E3 — Figure 3: fixed N replicas, vectors vs fork/join stamps")
	fmt.Fprintln(&b, "   N  rounds  syncs  checks  disagreements  vv-bytes  max-stamp-bytes")
	for _, n := range []int{3, 4, 6} {
		sys, err := sim.NewFigure3System(n)
		if err != nil {
			return "", err
		}
		// Rotating pairwise syncs grow stamp ids multiplicatively (see the
		// growth table in E5), so round counts stay modest; ordering
		// agreement — the figure's claim — is checked after every step.
		rounds := 6 * n
		checks, syncs := 0, 0
		for r := 0; r < rounds; r++ {
			k := r % n
			if err := sys.Update(k); err != nil {
				return "", err
			}
			if r%2 == 0 {
				if err := sys.Sync(k, (k+1)%n); err != nil {
					return "", err
				}
				syncs++
			}
			if err := sys.CheckAgreement(); err != nil {
				return "", fmt.Errorf("disagreement at round %d: %w", r, err)
			}
			checks += n * (n - 1) / 2
		}
		fmt.Fprintf(&b, "%4d  %6d  %5d  %6d  %13d  %8d  %15d\n",
			n, rounds, syncs, checks, 0, sys.VectorSize(), sys.MaxStampSize())
	}
	fmt.Fprintln(&b, "paper claim: the encodings are order-equivalent (Fig. 3); measured: 0 disagreements")
	return b.String(), nil
}

// E4 verifies Proposition 5.1 / Corollary 5.2 on randomized traces: version
// stamps (both models) and dynamic version vectors induce exactly the
// causal-history ordering.
func E4() (string, error) {
	var b strings.Builder
	fmt.Fprintln(&b, "E4 — Prop 5.1 / Cor 5.2: lockstep equivalence vs causal histories")
	fmt.Fprintln(&b, "workload    seeds  ops/trace  pair-checks  subset-checks  disagreements")
	workloads := []struct {
		label string
		w     sim.Weights
		ops   int
		// The non-reducing model's state grows exponentially with trace
		// length (string counts add at joins and duplicate at forks), so it
		// is verified on shorter traces; the reducing model and dynamic
		// version vectors run the full length.
		noReduce bool
	}{
		{"balanced", sim.Balanced, 200, false},
		{"forkheavy", sim.ForkHeavy, 200, false},
		{"syncheavy", sim.SyncHeavy, 200, false},
		{"balanced-nr", sim.Balanced, 80, true},
		{"syncheavy-nr", sim.SyncHeavy, 80, true},
	}
	for _, wl := range workloads {
		pairs, subsets := 0, 0
		const seeds = 5
		for seed := int64(0); seed < seeds; seed++ {
			trace := sim.Random(seed*31+7, wl.ops, wl.w, 8)
			dvv, err := sim.NewDynamicVVTracker(vv.NewCentralServer(), "dynamic-vv")
			if err != nil {
				return "", err
			}
			subjects := []sim.Tracker{sim.NewStampTracker(true), dvv}
			if wl.noReduce {
				subjects = append(subjects, sim.NewStampTracker(false))
			}
			runner := sim.NewRunner(
				sim.NewCausalTracker(),
				subjects,
				sim.Config{Check: sim.CheckSubsets, Seed: seed},
			)
			report, err := runner.Run(trace)
			if err != nil {
				return "", err
			}
			pairs += report.Comparisons
			subsets += report.SubsetChecks
		}
		fmt.Fprintf(&b, "%-13s %5d  %9d  %11d  %13d  %13d\n",
			wl.label, seeds, wl.ops, pairs, subsets, 0)
	}
	fmt.Fprintln(&b, "paper claim: orders coincide (proved); measured: 0 disagreements")
	return b.String(), nil
}

// E5 measures the space-adaptivity claim: reducing vs non-reducing stamps
// across workloads (plus the causal-history oracle as the unbounded
// baseline).
func E5() (string, error) {
	var b strings.Builder
	fmt.Fprintln(&b, "E5 — space adaptivity: reducing vs non-reducing stamps (bytes/element, end of run)")
	fmt.Fprintln(&b, "workload       ops  width  reduce(mean/max)  noreduce(mean/max)  causal(mean)")
	type wl struct {
		label string
		trace sim.Trace
	}
	// Traces are short because the non-reducing ablation's state grows
	// exponentially with joins (that growth is the point of the ablation);
	// both models replay the identical trace, so the comparison is fair.
	wls := []wl{
		{"forkheavy", sim.Random(11, 120, sim.ForkHeavy, 10)},
		{"syncheavy", sim.Random(12, 120, sim.SyncHeavy, 10)},
		{"balanced", sim.Random(13, 120, sim.Balanced, 10)},
		{"partitioned", sim.PartitionedEpochs(14, 4, 25, 12)},
		{"fixedN=6", sim.FixedN(15, 6, 15)},
	}
	for _, w := range wls {
		runner := sim.NewRunner(
			sim.NewCausalTracker(),
			[]sim.Tracker{sim.NewStampTracker(true), sim.NewStampTracker(false)},
			sim.Config{Check: sim.CheckNone, CollectSizes: true},
		)
		report, err := runner.Run(w.trace)
		if err != nil {
			return "", err
		}
		last := len(w.trace) - 1
		red := report.Sizes["stamps"][last]
		nored := report.Sizes["stamps-noreduce"][last]
		causal := report.Sizes["causal-histories"][last]
		fmt.Fprintf(&b, "%-12s %5d  %5d  %8.1f/%-8d %9.1f/%-8d %10.1f\n",
			w.label, len(w.trace), red.Width,
			red.MeanBytes(), red.MaxBytes,
			nored.MeanBytes(), nored.MaxBytes,
			causal.MeanBytes())
	}
	fmt.Fprintln(&b, "paper claim: reduction adapts stamp size to the frontier; causal histories only grow")

	// Negative finding: under ROTATING pairwise synchronization (three or
	// more replicas syncing round-robin), id components grow roughly by a
	// factor (1 + 2/N) per sync despite reduction — each sync gives both
	// participants the union of their id fragments with a fresh bit
	// appended, and the sibling halves rarely meet again. This is the known
	// growth weakness of version stamps that Interval Tree Clocks (E7)
	// later fixed; the paper targets frontier-shaped (fork/join-churning)
	// workloads, where reduction does keep stamps compact.
	fmt.Fprintln(&b, "\nrotating-sync growth, N=3 round-robin (the mechanism's worst case):")
	fmt.Fprintln(&b, "  syncs  max-id-strings  max-stamp-bytes")
	stamps := core.Seed().ForkN(3)
	for s := 0; s <= 12; s++ {
		if s > 0 {
			k := (s - 1) % 3
			stamps[k] = stamps[k].Update()
			j, err := core.Join(stamps[k], stamps[(k+1)%3])
			if err != nil {
				return "", err
			}
			stamps[k], stamps[(k+1)%3] = j.Fork()
		}
		if s%3 == 0 {
			maxStrings, maxBytes := 0, 0
			for _, st := range stamps {
				if l := st.IDName().Len(); l > maxStrings {
					maxStrings = l
				}
				if sz := st.EncodedSize(); sz > maxBytes {
					maxBytes = sz
				}
			}
			fmt.Fprintf(&b, "  %5d  %14d  %15d\n", s, maxStrings, maxBytes)
		}
	}
	fmt.Fprintln(&b, "  (growth is multiplicative: the successor ITC design, E7, bounds it)")
	return b.String(), nil
}

// E6 compares version stamps against dynamic version vectors on identical
// traces: dynamic vectors grow with replicas-ever-created, stamps with the
// live frontier.
func E6() (string, error) {
	var b strings.Builder
	fmt.Fprintln(&b, "E6 — stamps vs dynamic version vectors (bytes/element, end of run)")
	fmt.Fprintln(&b, "workload        ops  width  replicas-created  stamps(mean)  dvv(mean)")
	for _, ops := range []int{150, 300, 600} {
		trace := sim.Random(21, ops, sim.SyncHeavy, 10)
		alloc := vv.NewCentralServer()
		dvv, err := sim.NewDynamicVVTracker(alloc, "dynamic-vv")
		if err != nil {
			return "", err
		}
		runner := sim.NewRunner(
			sim.NewCausalTracker(),
			[]sim.Tracker{sim.NewStampTracker(true), dvv},
			sim.Config{Check: sim.CheckNone, CollectSizes: true},
		)
		report, err := runner.Run(trace)
		if err != nil {
			return "", err
		}
		_, forks, _ := trace.Counts()
		last := len(trace) - 1
		st := report.Sizes["stamps"][last]
		dv := report.Sizes["dynamic-vv"][last]
		fmt.Fprintf(&b, "syncheavy  %7d  %5d  %16d  %12.1f  %9.1f\n",
			ops, st.Width, forks+1, st.MeanBytes(), dv.MeanBytes())
	}
	fmt.Fprintln(&b, "shape: dvv grows ~linearly with replicas ever created; stamps track the live frontier")
	return b.String(), nil
}

// E7 runs interval tree clocks (the successor design) through the same
// lockstep checks and compares sizes.
func E7() (string, error) {
	var b strings.Builder
	fmt.Fprintln(&b, "E7 — interval tree clocks: agreement and size vs version stamps")
	fmt.Fprintln(&b, "workload    seeds  pair-checks  disagreements  stamps(mean B)  itc(mean B)")
	for _, wl := range []struct {
		label string
		w     sim.Weights
	}{
		{"balanced", sim.Balanced},
		{"syncheavy", sim.SyncHeavy},
	} {
		pairs := 0
		var stampMean, itcMean float64
		const seeds = 4
		for seed := int64(0); seed < seeds; seed++ {
			trace := sim.Random(seed*13+5, 200, wl.w, 10)
			runner := sim.NewRunner(
				sim.NewCausalTracker(),
				[]sim.Tracker{sim.NewStampTracker(true), sim.NewITCTracker()},
				sim.Config{Check: sim.CheckPairs, Seed: seed, CollectSizes: true},
			)
			report, err := runner.Run(trace)
			if err != nil {
				return "", err
			}
			pairs += report.Comparisons
			last := len(trace) - 1
			stampMean += report.Sizes["stamps"][last].MeanBytes()
			itcMean += report.Sizes["itc"][last].MeanBytes()
		}
		fmt.Fprintf(&b, "%-11s %5d  %11d  %13d  %14.1f  %11.1f\n",
			wl.label, seeds, pairs, 0, stampMean/seeds, itcMean/seeds)
	}
	fmt.Fprintln(&b, "paper (§7) anticipates this line of work; ITC induces the identical frontier order")
	return b.String(), nil
}

// E8 demonstrates the identification problem: replica creation under
// partition fails for id-server dynamic version vectors and succeeds for
// version stamps; random ids trade the failure for collision probability.
func E8() (string, error) {
	var b strings.Builder
	fmt.Fprintln(&b, "E8 — the identification problem under partition")

	server := vv.NewCentralServer()
	dvv, err := sim.NewDynamicVVTracker(server, "dynamic-vv")
	if err != nil {
		return "", err
	}
	st := sim.NewStampTracker(true)
	server.SetPartitioned(true)
	attempts, dvvFailures := 10, 0
	for i := 0; i < attempts; i++ {
		if err := dvv.Fork(0); err != nil {
			dvvFailures++
		}
		if err := st.Fork(0); err != nil {
			return "", fmt.Errorf("stamp fork failed under partition: %w", err)
		}
	}
	fmt.Fprintf(&b, "partitioned replica creation: dynamic-vv %d/%d failed, stamps 0/%d failed\n",
		dvvFailures, attempts, attempts)
	fmt.Fprintf(&b, "stamp frontier width after %d offline forks: %d\n", attempts, st.Width())

	fmt.Fprintln(&b, "\nprobabilistic ids (birthday bound, 64-bit): draws -> P(collision)")
	for _, n := range []int{1 << 10, 1 << 16, 1 << 24, 1 << 32} {
		fmt.Fprintf(&b, "  %12d -> %.3g\n", n, vv.CollisionProbability(n, 64))
	}
	fmt.Fprintln(&b, "paper (§1): guaranteed-unique ids are required; stamps need none")
	return b.String(), nil
}

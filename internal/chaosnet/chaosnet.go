// Package chaosnet is a deterministic in-memory network fabric for fault
// injection. It hands out net.Conn / net.Listener values whose bytes flow
// through a segment layer with per-link seeded faults — drop, duplicate,
// reorder, delay, bandwidth caps, asymmetric partitions, and mid-stream
// connection cuts — all driven by a logical tick counter, never by timers.
//
// Determinism is the design center. Every fault decision is a pure function
// of (fabric seed, directed link, connection sequence number, segment
// sequence number), so outcomes do not depend on goroutine interleaving:
// the same seed and the same traffic produce the same drops, the same
// duplicates, and the same cuts, regardless of scheduling. Time is a single
// logical tick shared by the fabric; a reader blocked on a delayed segment
// advances the tick to the earliest pending delivery instead of sleeping.
//
// The stream abstraction survives packet-level faults the way TCP does:
// writes are split into sequence-numbered segments, the receiver reassembles
// in order, a dropped segment is retransmitted after an RTO's worth of ticks
// (modeled as extra delay), a duplicate is discarded by sequence number, and
// reordering is absorbed by the reassembly buffer. Only a connection cut
// (CutAfterBytes, retransmission exhaustion, Partition, or Close) surfaces
// as an error on the conn — exactly the failure surface real sockets give
// the protocol layers above.
package chaosnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"
)

// Faults configures the fault model of one directed link (or the fabric
// default). The zero value is a perfect network: instant, lossless,
// unbounded.
type Faults struct {
	// DelayTicks delays every segment by this many logical ticks.
	DelayTicks int
	// JitterTicks adds a seeded per-segment delay in [0, JitterTicks].
	JitterTicks int
	// DropProb drops a segment with this probability (seeded). A dropped
	// segment is retransmitted: it arrives rtoTicks later per consecutive
	// drop, and maxRetrans consecutive drops reset the connection.
	DropProb float64
	// DupProb schedules a second (discarded-on-arrival) copy of a segment.
	DupProb float64
	// ReorderProb gives a segment extra delay so it arrives after its
	// successors (absorbed by reassembly; stresses buffering, not framing).
	ReorderProb float64
	// BytesPerTick caps link bandwidth; 0 = unbounded. Segments queue
	// behind one another at this drain rate.
	BytesPerTick int
	// CutAfterBytes resets every connection on this link after roughly this
	// many bytes (seeded ±25% per connection), modeling mid-frame cuts.
	// 0 = never.
	CutAfterBytes int64
	// DialFailProb fails Dial outright with this probability (seeded).
	DialFailProb float64
	// Block makes the link a black hole: dials fail, in-flight segments are
	// discarded, reads on the receiving side time out. Asymmetric: set on
	// one direction only for an asymmetric partition.
	Block bool
}

// Stats counts fault events across the fabric since construction. Counters
// only grow; read a snapshot with Fabric.Stats.
type Stats struct {
	Delivered   int64 `json:"delivered"`   // segments delivered
	Drops       int64 `json:"drops"`       // segments dropped (then retransmitted)
	Dups        int64 `json:"dups"`        // duplicate segments scheduled
	Reorders    int64 `json:"reorders"`    // segments given reorder delay
	Cuts        int64 `json:"cuts"`        // mid-stream connection cuts
	Resets      int64 `json:"resets"`      // connections reset (cuts + retransmission exhaustion + partitions)
	DialsFailed int64 `json:"dialsFailed"` // dials refused by faults or partitions
	Blackholed  int64 `json:"blackholed"`  // reads/writes timed out on blocked links
}

const (
	segmentBytes = 512 // max payload per segment
	rtoTicks     = 4   // extra delay per consecutive drop (retransmission)
	maxRetrans   = 8   // consecutive drops that reset the connection
)

// ErrClosed is returned by operations on a closed fabric, host, or conn.
var ErrClosed = errors.New("chaosnet: closed")

// netError is a net.Error with a Timeout verdict, what protocol layers
// check to distinguish dead-slow from dead.
type netError struct {
	msg     string
	timeout bool
}

func (e *netError) Error() string   { return e.msg }
func (e *netError) Timeout() bool   { return e.timeout }
func (e *netError) Temporary() bool { return e.timeout }

var (
	errReset     = &netError{msg: "chaosnet: connection reset by fault injection"}
	errBlackhole = &netError{msg: "chaosnet: i/o timeout (link blocked)", timeout: true}
)

type linkKey struct{ from, to string }

// Fabric is one simulated network: a set of named hosts, the links between
// them, and a shared logical clock. All methods are safe for concurrent use.
type Fabric struct {
	mu        sync.Mutex
	cond      *sync.Cond
	seed      int64
	tick      int64
	listeners map[string]*Listener
	links     map[linkKey]Faults
	defaults  Faults
	group     map[string]int // partition group per host; absent = group 0
	dialSeq   map[linkKey]uint64
	pipes     map[*pipe]struct{}
	stats     Stats
	closed    bool
}

// New creates a fabric whose every fault decision derives from seed.
func New(seed int64) *Fabric {
	f := &Fabric{
		seed:      seed,
		listeners: make(map[string]*Listener),
		links:     make(map[linkKey]Faults),
		group:     make(map[string]int),
		dialSeq:   make(map[linkKey]uint64),
		pipes:     make(map[*pipe]struct{}),
	}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// Tick returns the current logical tick.
func (f *Fabric) Tick() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tick
}

// Advance moves the logical clock forward n ticks and wakes blocked readers.
func (f *Fabric) Advance(n int64) {
	f.mu.Lock()
	f.tick += n
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Stats returns a snapshot of the fault counters.
func (f *Fabric) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// SetDefaultFaults sets the fault model applied to links with no explicit
// SetLinkFaults entry.
func (f *Fabric) SetDefaultFaults(fl Faults) {
	f.mu.Lock()
	f.defaults = fl
	f.cond.Broadcast()
	f.mu.Unlock()
}

// SetLinkFaults sets the fault model of the directed link from → to,
// overriding the default. Setting Block discards the link's in-flight
// segments immediately.
func (f *Fabric) SetLinkFaults(from, to string, fl Faults) {
	f.mu.Lock()
	f.links[linkKey{from, to}] = fl
	if fl.Block {
		for p := range f.pipes {
			if p.from == from && p.to == to {
				p.segs = nil
			}
		}
	}
	f.cond.Broadcast()
	f.mu.Unlock()
}

// ClearLinkFaults removes the explicit fault model of from → to, reverting
// the link to the fabric default.
func (f *Fabric) ClearLinkFaults(from, to string) {
	f.mu.Lock()
	delete(f.links, linkKey{from, to})
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Partition splits hosts into numbered groups; traffic crossing a group
// boundary is cut (existing connections reset, new dials refused). Hosts
// not named stay in group 0. Heal undoes it.
func (f *Fabric) Partition(groups map[string]int) {
	f.mu.Lock()
	f.group = make(map[string]int, len(groups))
	for id, g := range groups {
		f.group[id] = g
	}
	for p := range f.pipes {
		if f.group[p.from] != f.group[p.to] {
			p.resetLocked()
			f.stats.Resets++
		}
	}
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Heal removes all partition boundaries. Connections reset by Partition
// stay dead — the layers above redial, as they would in production.
func (f *Fabric) Heal() {
	f.mu.Lock()
	f.group = make(map[string]int)
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Close shuts the fabric down: every conn errors, every listener stops.
func (f *Fabric) Close() {
	f.mu.Lock()
	f.closed = true
	for p := range f.pipes {
		p.resetLocked()
	}
	f.cond.Broadcast()
	f.mu.Unlock()
}

// faultsLocked returns the effective fault model of from → to.
func (f *Fabric) faultsLocked(from, to string) Faults {
	if fl, ok := f.links[linkKey{from, to}]; ok {
		return fl
	}
	return f.defaults
}

// Node returns the fabric endpoint for host id, the object whose Dial and
// Listen stand in for the TCP stack. Hosts need no registration; any id is
// valid.
func (f *Fabric) Node(id string) *Host { return &Host{f: f, id: id} }

// Host is one named endpoint of a fabric.
type Host struct {
	f  *Fabric
	id string
}

// ID returns the host's name.
func (h *Host) ID() string { return h.id }

// Listen opens a listener for this host. The addr is cosmetic — each host
// has one listening identity, and the returned listener's Addr() reports
// the host id, which is what peers Dial.
func (h *Host) Listen(addr string) (net.Listener, error) {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if h.f.closed {
		return nil, ErrClosed
	}
	if _, ok := h.f.listeners[h.id]; ok {
		return nil, fmt.Errorf("chaosnet: host %q already listening", h.id)
	}
	l := &Listener{f: h.f, id: h.id}
	h.f.listeners[h.id] = l
	return l, nil
}

// Dial connects to the host named addr. The timeout parameter is accepted
// for interface compatibility and ignored — chaosnet failures are decided
// by faults, not clocks.
func (h *Host) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	_ = timeout
	f := h.f
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	lk := linkKey{h.id, addr}
	seq := f.dialSeq[lk]
	f.dialSeq[lk] = seq + 1
	fwd := f.faultsLocked(h.id, addr)
	rev := f.faultsLocked(addr, h.id)
	if f.group[h.id] != f.group[addr] || fwd.Block {
		f.stats.DialsFailed++
		f.mu.Unlock()
		return nil, &netError{msg: fmt.Sprintf("chaosnet: dial %s->%s: no route", h.id, addr), timeout: true}
	}
	if fwd.DialFailProb > 0 && chance(hash3(f.seed, linkSalt(h.id, addr), seq, 0), fwd.DialFailProb) {
		f.stats.DialsFailed++
		f.mu.Unlock()
		return nil, &netError{msg: fmt.Sprintf("chaosnet: dial %s->%s: injected failure", h.id, addr), timeout: true}
	}
	l, ok := f.listeners[addr]
	if !ok || l.closed {
		f.mu.Unlock()
		return nil, &netError{msg: fmt.Sprintf("chaosnet: dial %s->%s: connection refused", h.id, addr)}
	}
	ab := newPipe(f, h.id, addr, seq, fwd)
	ba := newPipe(f, addr, h.id, seq, rev)
	f.pipes[ab] = struct{}{}
	f.pipes[ba] = struct{}{}
	client := &Conn{f: f, local: h.id, remote: addr, out: ab, in: ba}
	server := &Conn{f: f, local: addr, remote: h.id, out: ba, in: ab}
	l.backlog = append(l.backlog, server)
	f.cond.Broadcast()
	f.mu.Unlock()
	return client, nil
}

// Listener accepts fabric connections for one host.
type Listener struct {
	f       *Fabric
	id      string
	backlog []*Conn
	closed  bool
}

// Accept waits for and returns the next connection.
func (l *Listener) Accept() (net.Conn, error) {
	f := l.f
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if l.closed || f.closed {
			return nil, ErrClosed
		}
		if len(l.backlog) > 0 {
			c := l.backlog[0]
			l.backlog = l.backlog[1:]
			return c, nil
		}
		f.cond.Wait()
	}
}

// Close stops the listener. Established connections are unaffected.
func (l *Listener) Close() error {
	f := l.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if !l.closed {
		l.closed = true
		if f.listeners[l.id] == l {
			delete(f.listeners, l.id)
		}
		f.cond.Broadcast()
	}
	return nil
}

// Addr reports the host id; it is what peers pass to Dial.
func (l *Listener) Addr() net.Addr { return fabricAddr(l.id) }

type fabricAddr string

func (a fabricAddr) Network() string { return "chaosnet" }
func (a fabricAddr) String() string  { return string(a) }

// segment is one in-flight chunk of a pipe's byte stream.
type segment struct {
	seq  uint64
	due  int64
	data []byte
	dup  bool // duplicate copy: discarded on arrival
}

// pipe is one direction of one connection.
type pipe struct {
	f        *Fabric
	from, to string
	connSeq  uint64
	faults   Faults // snapshot at dial; Block/partition checks stay live

	nextSeq    uint64    // next segment sequence to assign
	deliverSeq uint64    // next segment sequence the reader expects
	segs       []segment // in flight, unordered
	buf        []byte    // reassembled, readable now
	sent       int64     // payload bytes accepted from the writer
	nextFree   int64     // bandwidth pacing: earliest tick the link is free
	cutAt      int64     // byte count that cuts the conn; 0 = never
	reset      bool      // connection reset: reads/writes error
	wclosed    bool      // writer closed cleanly: reads drain then EOF
	drops      int       // consecutive drops (retransmission counter)
}

func newPipe(f *Fabric, from, to string, connSeq uint64, fl Faults) *pipe {
	p := &pipe{f: f, from: from, to: to, connSeq: connSeq, faults: fl}
	if fl.CutAfterBytes > 0 {
		// ±25% seeded per-connection jitter so parallel conns cut at
		// different points in their streams.
		j := hash3(f.seed, linkSalt(from, to), connSeq, ^uint64(0))
		span := fl.CutAfterBytes / 2
		if span > 0 {
			p.cutAt = fl.CutAfterBytes - span/2 + int64(j%uint64(span))
		} else {
			p.cutAt = fl.CutAfterBytes
		}
	}
	return p
}

func (p *pipe) resetLocked() {
	if !p.reset {
		p.reset = true
		p.segs = nil
	}
}

// liveFaultsLocked returns the current fault model of the pipe's link —
// Block and probabilities are honored live so SetLinkFaults mid-connection
// takes effect; bandwidth/delay shaping uses the same live values too.
func (p *pipe) liveFaultsLocked() Faults { return p.f.faultsLocked(p.from, p.to) }

// blockedLocked reports whether the pipe can move data at all right now.
func (p *pipe) blockedLocked() bool {
	return p.liveFaultsLocked().Block || p.f.group[p.from] != p.f.group[p.to]
}

// write enqueues b's bytes as segments. Called with f.mu held.
func (p *pipe) writeLocked(b []byte) (int, error) {
	f := p.f
	if p.reset {
		return 0, errReset
	}
	if p.blockedLocked() {
		// Black hole: the bytes vanish. The writer does not learn — like a
		// real socket writing into a dead link — but the conn marks itself
		// so a subsequent read times out instead of hanging forever.
		f.stats.Blackholed++
		p.sent += int64(len(b))
		return len(b), nil
	}
	fl := p.liveFaultsLocked()
	salt := linkSalt(p.from, p.to)
	n := 0
	for len(b) > 0 {
		chunk := b
		if len(chunk) > segmentBytes {
			chunk = chunk[:segmentBytes]
		}
		b = b[len(chunk):]
		seq := p.nextSeq
		p.nextSeq++
		h := hash3(f.seed, salt, p.connSeq, seq)
		delay := int64(fl.DelayTicks)
		if fl.JitterTicks > 0 {
			delay += int64(h % uint64(fl.JitterTicks+1))
		}
		// Bandwidth pacing: segments drain at BytesPerTick.
		due := f.tick + delay
		if fl.BytesPerTick > 0 {
			if p.nextFree < f.tick {
				p.nextFree = f.tick
			}
			occupancy := int64((len(chunk) + fl.BytesPerTick - 1) / fl.BytesPerTick)
			due = p.nextFree + delay
			p.nextFree += occupancy
		}
		if fl.DropProb > 0 && chance(rot(h, 17), fl.DropProb) {
			f.stats.Drops++
			p.drops++
			if p.drops >= maxRetrans {
				f.stats.Resets++
				p.resetLocked()
				return n, errReset
			}
			// Retransmission: the segment still arrives, rtoTicks later per
			// consecutive drop so far.
			due += int64(p.drops) * rtoTicks
		} else {
			p.drops = 0
		}
		if fl.ReorderProb > 0 && chance(rot(h, 31), fl.ReorderProb) {
			f.stats.Reorders++
			due += rtoTicks / 2
		}
		data := make([]byte, len(chunk))
		copy(data, chunk)
		p.segs = append(p.segs, segment{seq: seq, due: due, data: data})
		if fl.DupProb > 0 && chance(rot(h, 47), fl.DupProb) {
			f.stats.Dups++
			p.segs = append(p.segs, segment{seq: seq, due: due + 1, data: data, dup: true})
		}
		n += len(chunk)
		p.sent += int64(len(chunk))
		if p.cutAt > 0 && p.sent >= p.cutAt {
			// Mid-stream cut: everything already segmented may still arrive
			// (it is "on the wire"), but the connection is dead.
			f.stats.Cuts++
			f.stats.Resets++
			p.resetLocked2()
			return n, errReset
		}
	}
	f.cond.Broadcast()
	return n, nil
}

// resetLocked2 cuts the connection but lets already-queued segments deliver:
// the receiver sees a partial stream then a reset — a true mid-frame cut.
func (p *pipe) resetLocked2() {
	p.reset = true
}

// pump moves due, in-order segments into the read buffer. Returns true if
// it made progress. Called with f.mu held.
func (p *pipe) pumpLocked() bool {
	f := p.f
	progressed := false
	for {
		found := -1
		for i := range p.segs {
			s := &p.segs[i]
			if s.due <= f.tick {
				if s.seq < p.deliverSeq || (s.dup && s.seq != p.deliverSeq) {
					// Duplicate of something already delivered: discard.
					p.segs = append(p.segs[:i], p.segs[i+1:]...)
					found = -2
					break
				}
				if s.seq == p.deliverSeq {
					found = i
					break
				}
			}
		}
		if found == -2 {
			continue
		}
		if found < 0 {
			return progressed
		}
		s := p.segs[found]
		p.segs = append(p.segs[:found], p.segs[found+1:]...)
		p.buf = append(p.buf, s.data...)
		p.deliverSeq++
		f.stats.Delivered++
		progressed = true
	}
}

// earliestLocked returns the earliest future due tick among pending
// segments that the reader is actually waiting for, or -1 if none.
func (p *pipe) earliestLocked() int64 {
	best := int64(-1)
	for i := range p.segs {
		s := &p.segs[i]
		if s.due > p.f.tick && (best < 0 || s.due < best) {
			best = s.due
		}
	}
	return best
}

// Conn is one endpoint of a fabric connection. It implements net.Conn.
// Deadlines are no-ops: chaosnet time is logical, and blocking reads
// resolve by advancing the fabric tick, not by expiring timers.
type Conn struct {
	f          *Fabric
	local      string
	remote     string
	in, out    *pipe
	closed     bool
	blackholed bool // wrote into a blocked link: next read times out
}

// Read returns reassembled in-order bytes, advancing the logical clock when
// everything pending lies in the future.
func (c *Conn) Read(b []byte) (int, error) {
	f := c.f
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if c.closed {
			return 0, ErrClosed
		}
		c.in.pumpLocked()
		if len(c.in.buf) > 0 {
			n := copy(b, c.in.buf)
			c.in.buf = c.in.buf[n:]
			return n, nil
		}
		if c.in.reset || f.closed {
			return 0, errReset
		}
		if c.in.wclosed && len(c.in.segs) == 0 {
			return 0, io.EOF
		}
		// Nothing readable. If the incoming link is blocked, or we wrote
		// into a blocked outgoing link (our request went to a black hole,
		// so no reply is coming), fail fast with a timeout error instead
		// of deadlocking the protocol layer.
		if c.in.blockedLocked() || c.blackholed || (c.out.blockedLocked() && c.out.sent > 0) {
			f.stats.Blackholed++
			return 0, errBlackhole
		}
		// If segments are pending but due in the future, advance the global
		// clock to the earliest due tick — the event-driven heart of the
		// logical time model.
		if due := c.in.earliestLocked(); due >= 0 {
			if due > f.tick {
				f.tick = due
			}
			f.cond.Broadcast()
			continue
		}
		f.cond.Wait()
	}
}

// Write splits b into fault-subjected segments on the outgoing pipe.
func (c *Conn) Write(b []byte) (int, error) {
	f := c.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if c.closed {
		return 0, ErrClosed
	}
	if f.closed {
		return 0, errReset
	}
	if c.out.blockedLocked() {
		c.blackholed = true
	}
	return c.out.writeLocked(b)
}

// Close tears down both directions and unregisters the pipes.
func (c *Conn) Close() error {
	f := c.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.out.wclosed = true
	// Reads on our side must not hang: drop the incoming pipe's claim on
	// future wakeups by resetting it for us only when drained is fine —
	// the peer's writes simply accumulate unread.
	delete(f.pipes, c.out)
	if c.in.wclosed {
		delete(f.pipes, c.in)
	}
	f.cond.Broadcast()
	return nil
}

// LocalAddr reports the local host id.
func (c *Conn) LocalAddr() net.Addr { return fabricAddr(c.local) }

// RemoteAddr reports the remote host id.
func (c *Conn) RemoteAddr() net.Addr { return fabricAddr(c.remote) }

// SetDeadline is a no-op: chaosnet time is logical.
func (c *Conn) SetDeadline(t time.Time) error { return nil }

// SetReadDeadline is a no-op.
func (c *Conn) SetReadDeadline(t time.Time) error { return nil }

// SetWriteDeadline is a no-op.
func (c *Conn) SetWriteDeadline(t time.Time) error { return nil }

// linkSalt folds a directed link's names into a hash salt.
func linkSalt(from, to string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(from); i++ {
		h = (h ^ uint64(from[i])) * prime64
	}
	h = (h ^ 0xff) * prime64
	for i := 0; i < len(to); i++ {
		h = (h ^ uint64(to[i])) * prime64
	}
	return h
}

// hash3 mixes the fabric seed, link salt, connection and segment sequence
// numbers into a uniform 64-bit value (splitmix64 finalizer). Deterministic
// and interleaving-independent by construction.
func hash3(seed int64, salt, connSeq, segSeq uint64) uint64 {
	x := uint64(seed) ^ rot(salt, 23) ^ rot(connSeq, 44) ^ segSeq
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func rot(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// chance maps a hash to a Bernoulli draw with probability p.
func chance(h uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(h>>11)/float64(1<<53) < p
}

// Hosts returns the ids of all hosts currently listening, sorted — a
// convenience for scenario code enumerating the fabric.
func (f *Fabric) Hosts() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	ids := make([]string, 0, len(f.listeners))
	for id := range f.listeners {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

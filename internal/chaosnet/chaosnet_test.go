package chaosnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
)

// echoServer accepts connections and echoes everything back until EOF.
func echoServer(t *testing.T, ln net.Listener) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				buf := make([]byte, 1024)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()
	return &wg
}

func TestPerfectLinkEcho(t *testing.T) {
	f := New(1)
	defer f.Close()
	ln, err := f.Node("srv").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	echoServer(t, ln)
	c, err := f.Node("cli").Dial("srv", 0)
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("hello chaosnet "), 200) // multi-segment
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("echo mismatch")
	}
	c.Close()
	ln.Close()
}

func TestDelayAdvancesLogicalClock(t *testing.T) {
	f := New(2)
	defer f.Close()
	f.SetDefaultFaults(Faults{DelayTicks: 10})
	ln, _ := f.Node("srv").Listen(":0")
	echoServer(t, ln)
	c, err := f.Node("cli").Dial("srv", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	// Request took 10 ticks, reply 10 more; the clock moved without timers.
	if f.Tick() < 20 {
		t.Fatalf("tick = %d, want >= 20", f.Tick())
	}
}

func TestFaultySegmentsReassemble(t *testing.T) {
	// Drop + dup + reorder + jitter all at once: the stream must still
	// deliver byte-identical content — faults degrade latency, not data.
	f := New(3)
	defer f.Close()
	f.SetDefaultFaults(Faults{
		DelayTicks: 2, JitterTicks: 5,
		DropProb: 0.2, DupProb: 0.2, ReorderProb: 0.3,
	})
	ln, _ := f.Node("srv").Listen(":0")
	echoServer(t, ln)
	c, err := f.Node("cli").Dial("srv", 0)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 32*1024)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Write(msg)
		done <- err
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("faulty link corrupted the stream")
	}
	st := f.Stats()
	if st.Drops == 0 || st.Dups == 0 || st.Reorders == 0 {
		t.Fatalf("faults did not fire: %+v", st)
	}
}

func TestDeterministicFaultSchedule(t *testing.T) {
	run := func() Stats {
		f := New(42)
		defer f.Close()
		f.SetDefaultFaults(Faults{DelayTicks: 1, JitterTicks: 3, DropProb: 0.15, DupProb: 0.1, ReorderProb: 0.2})
		ln, _ := f.Node("srv").Listen(":0")
		echoServer(t, ln)
		c, err := f.Node("cli").Dial("srv", 0)
		if err != nil {
			t.Fatal(err)
		}
		msg := make([]byte, 16*1024)
		go c.Write(msg)
		io.ReadFull(c, make([]byte, len(msg)))
		c.Close()
		return f.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different fault schedule:\n%+v\n%+v", a, b)
	}
}

func TestPartitionRefusesAndResets(t *testing.T) {
	f := New(4)
	defer f.Close()
	ln, _ := f.Node("b").Listen(":0")
	echoServer(t, ln)
	c, err := f.Node("a").Dial("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}

	f.Partition(map[string]int{"a": 0, "b": 1})
	if _, err := f.Node("a").Dial("b", 0); err == nil {
		t.Fatal("dial across partition succeeded")
	}
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read on partitioned conn succeeded")
	}

	f.Heal()
	c2, err := f.Node("a").Dial("b", 0)
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	c2.Write([]byte("y"))
	if _, err := io.ReadFull(c2, make([]byte, 1)); err != nil {
		t.Fatalf("echo after heal: %v", err)
	}
}

func TestAsymmetricBlockTimesOutFast(t *testing.T) {
	f := New(5)
	defer f.Close()
	ln, _ := f.Node("b").Listen(":0")
	echoServer(t, ln)
	c, err := f.Node("a").Dial("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Block only b→a: a's request arrives, b's reply vanishes. The read
	// must fail with a timeout-flavored net.Error, not hang.
	f.SetLinkFaults("b", "a", Faults{Block: true})
	c.Write([]byte("ping"))
	_, err = c.Read(make([]byte, 4))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want timeout net.Error, got %v", err)
	}
}

func TestBlackholedWriteFailsNextRead(t *testing.T) {
	f := New(6)
	defer f.Close()
	ln, _ := f.Node("b").Listen(":0")
	echoServer(t, ln)
	c, err := f.Node("a").Dial("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Block a→b after the dial: the write vanishes silently (like a real
	// socket) and the subsequent read times out instead of hanging.
	f.SetLinkFaults("a", "b", Faults{Block: true})
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatalf("write into black hole should buffer silently, got %v", err)
	}
	_, err = c.Read(make([]byte, 4))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want timeout net.Error, got %v", err)
	}
}

func TestMidStreamCut(t *testing.T) {
	f := New(7)
	defer f.Close()
	f.SetDefaultFaults(Faults{CutAfterBytes: 4096})
	ln, _ := f.Node("srv").Listen(":0")
	echoServer(t, ln)
	c, err := f.Node("cli").Dial("srv", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Stream far more than the cut threshold; the write must fail partway.
	msg := make([]byte, 64*1024)
	n, err := c.Write(msg)
	if err == nil {
		t.Fatalf("write survived a CutAfterBytes link (n=%d)", n)
	}
	if n == 0 || n >= len(msg) {
		t.Fatalf("cut at n=%d, want mid-stream", n)
	}
	if f.Stats().Cuts == 0 {
		t.Fatal("no cut recorded")
	}
}

func TestRetransmissionExhaustionResets(t *testing.T) {
	f := New(8)
	defer f.Close()
	f.SetDefaultFaults(Faults{DropProb: 1})
	ln, _ := f.Node("srv").Listen(":0")
	echoServer(t, ln)
	c, err := f.Node("cli").Dial("srv", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Every segment drops; after maxRetrans consecutive drops the conn
	// resets rather than retrying forever.
	_, err = c.Write(make([]byte, maxRetrans*segmentBytes*2))
	if err == nil {
		t.Fatal("write survived 100% loss")
	}
	if f.Stats().Resets == 0 {
		t.Fatal("no reset recorded")
	}
}

func TestBandwidthPacingOrders(t *testing.T) {
	f := New(9)
	defer f.Close()
	f.SetDefaultFaults(Faults{BytesPerTick: 256})
	ln, _ := f.Node("srv").Listen(":0")
	echoServer(t, ln)
	c, err := f.Node("cli").Dial("srv", 0)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 8*1024)
	go c.Write(msg)
	if _, err := io.ReadFull(c, make([]byte, len(msg))); err != nil {
		t.Fatal(err)
	}
	// 8 KiB each way at 256 B/tick is at least ~32 ticks of occupancy.
	if f.Tick() < 30 {
		t.Fatalf("tick = %d after paced transfer, want >= 30", f.Tick())
	}
}

func TestDialFailProb(t *testing.T) {
	f := New(10)
	defer f.Close()
	f.SetDefaultFaults(Faults{DialFailProb: 0.5})
	ln, _ := f.Node("srv").Listen(":0")
	defer ln.Close()
	fails := 0
	for i := 0; i < 100; i++ {
		c, err := f.Node("cli").Dial("srv", 0)
		if err != nil {
			fails++
			continue
		}
		c.Close()
	}
	if fails < 20 || fails > 80 {
		t.Fatalf("dial failures = %d/100 at p=0.5", fails)
	}
}

func TestCleanCloseEOF(t *testing.T) {
	f := New(11)
	defer f.Close()
	ln, _ := f.Node("b").Listen(":0")
	accepted := make(chan net.Conn, 1)
	go func() {
		c, _ := ln.Accept()
		accepted <- c
	}()
	c, err := f.Node("a").Dial("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted
	c.Write([]byte("bye"))
	c.Close()
	got, err := io.ReadAll(srv)
	if err != nil {
		t.Fatalf("read after clean close: %v", err)
	}
	if string(got) != "bye" {
		t.Fatalf("got %q", got)
	}
}

module versionstamp

go 1.22

// Partition: the paper's motivating failure. A fleet of field devices needs
// new replicas while disconnected from headquarters. Dynamic version
// vectors stall — no unique replica identifier can be minted across the
// partition — while version stamps fork locally and keep tracking causality.
//
//	go run ./examples/partition
package main

import (
	"fmt"
	"log"

	"versionstamp"
	"versionstamp/internal/vv"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== dynamic version vectors with a central identifier server ==")
	server := vv.NewCentralServer()
	id0, err := server.NewID()
	if err != nil {
		return err
	}
	truck := vv.NewDynamic(id0)
	truck = truck.Update()
	fmt.Printf("truck replica online: %v\n", truck)

	// The truck drives out of coverage.
	server.SetPartitioned(true)
	fmt.Println("truck enters a dead zone (identifier server unreachable)")

	// A field engineer wants a copy on a handheld. The vector needs a fresh
	// globally unique id — and cannot get one.
	if _, err := server.NewID(); err != nil {
		fmt.Printf("handheld replica creation FAILED: %v\n", err)
	}

	fmt.Println()
	fmt.Println("== version stamps: identity is derived by forking, locally ==")
	truckStamp := versionstamp.Seed().Update()
	fmt.Printf("truck stamp: %v\n", truckStamp)

	// Same dead zone; forking needs nothing but the stamp itself.
	truckStamp, handheld := truckStamp.Fork()
	fmt.Printf("handheld created offline: truck %v, handheld %v\n", truckStamp, handheld)

	// The handheld forks again for a second engineer. Still offline.
	handheld, spare := handheld.Fork()
	fmt.Printf("second handheld created offline: %v\n", spare)

	// Work happens on the devices.
	handheld = handheld.Update()
	spare = spare.Update()
	fmt.Printf("after field edits: handheld %v, spare %v\n", handheld, spare)
	fmt.Printf("handheld vs spare: %v (both edited: conflict is detected)\n",
		versionstamp.Compare(handheld, spare))
	fmt.Printf("truck vs handheld: %v (truck is stale)\n",
		versionstamp.Compare(truckStamp, handheld))

	// Back in coverage: reconcile pairwise, retire the spare.
	handheld, spare, err = versionstamp.Sync(handheld, spare)
	if err != nil {
		return err
	}
	merged, err := versionstamp.Join(handheld, spare)
	if err != nil {
		return err
	}
	truckStamp, err = versionstamp.Join(truckStamp, merged)
	if err != nil {
		return err
	}
	fmt.Printf("everything merged back into the truck: %v\n", truckStamp)

	fmt.Println()
	fmt.Println("== probabilistic identifiers are the usual workaround — and a gamble ==")
	for _, n := range []int{1 << 16, 1 << 24, 1 << 32} {
		fmt.Printf("  %11d random 64-bit ids -> P(collision) = %.3g\n",
			n, vv.CollisionProbability(n, 64))
	}
	fmt.Println("version stamps make the gamble unnecessary.")
	return nil
}

// Crashrecovery: a WAL-backed replica killed mid-write comes back with
// every acknowledged write, repairs a torn log tail by itself, and resumes
// anti-entropy against an untouched peer exactly where it left off —
// because the log preserves version stamps, the peer and the survivor
// agree on what already converged without re-shipping a byte of it.
//
//	go run ./examples/crashrecovery
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"versionstamp/internal/antientropy"
	"versionstamp/internal/kvstore"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "crashrecovery-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// A durable replica: every Put/Delete is appended to the owning
	// stripe's log before it is acknowledged.
	store, err := kvstore.Open(dir, kvstore.Options{Label: "durable-node", Shards: 4})
	if err != nil {
		return err
	}
	store.Put("orders:1001", []byte("3×widget"))
	store.Put("orders:1002", []byte("1×gadget"))
	store.Put("orders:1001", []byte("3×widget,1×cable"))
	store.Delete("orders:1002")
	fmt.Printf("wrote 4 ops to %s (%d live keys)\n", dir, store.Len())

	// A peer replica synchronizes and keeps running while we crash.
	peer := store.Clone("peer")
	peer.Put("orders:2001", []byte("5×spring")) // lands only at the peer

	// Crash: the process dies mid-append — no Close, no checkpoint (Abandon
	// releases the directory so this process can reopen it), and the last
	// log record is torn in half, as a power cut would leave it.
	if err := store.Abandon(); err != nil {
		return err
	}
	logs, err := filepath.Glob(filepath.Join(dir, "shard-*.wal"))
	if err != nil {
		return err
	}
	var torn string
	for _, path := range logs {
		fi, err := os.Stat(path)
		if err != nil {
			return err
		}
		if fi.Size() > 0 {
			if err := os.Truncate(path, fi.Size()-3); err != nil {
				return err
			}
			torn = filepath.Base(path)
			break
		}
	}
	fmt.Printf("simulated crash: process gone, %s torn mid-record\n", torn)

	// Restart: Open replays each stripe's checkpoint and log tail. The torn
	// record was never acknowledged, so truncating it loses nothing the
	// caller was promised; everything acknowledged is back, stamps intact.
	revived, err := kvstore.Open(dir, kvstore.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("reopened: %d live keys, label %q preserved\n", revived.Len(), revived.Label())

	// Anti-entropy picks up where it left off: a v3 round against the
	// untouched peer moves only what the stamps cannot prove equivalent —
	// the peer's new order and whatever the torn record cost us.
	srv := antientropy.NewServer(revived, kvstore.KeepBoth([]byte(" | ")))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	pool := antientropy.NewPool()
	defer pool.Close()
	res, err := pool.SyncWith(addr, peer)
	if err != nil {
		return err
	}
	fmt.Printf("recovery round: %d transferred, %d reconciled, %d stripes skipped unread\n",
		res.Transferred, res.Reconciled, res.StripesSkipped)

	// The reconciliation itself was logged: crash again without a
	// checkpoint and the synced state still survives.
	if err := srv.Close(); err != nil {
		return err
	}
	if err := revived.Abandon(); err != nil {
		return err
	}
	again, err := kvstore.Open(dir, kvstore.Options{})
	if err != nil {
		return err
	}
	defer again.Close()
	v, ok := again.Get("orders:2001")
	fmt.Printf("after second crash and restart: orders:2001 = %q (present: %v)\n", v, ok)

	srv2 := antientropy.NewServer(again, nil)
	addr, err = srv2.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv2.Close()
	res, err = pool.SyncWith(addr, peer)
	if err != nil {
		return err
	}
	fmt.Printf("quiescent round: %d of %d stripes skipped, %dB on the wire\n",
		res.StripesSkipped, peer.Shards(), res.BytesSent+res.BytesReceived)
	return nil
}

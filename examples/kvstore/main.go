// Kvstore: an optimistically replicated shopping-cart store. Each key's
// copies carry version stamps; synchronization transfers missing keys,
// fast-forwards stale ones, and surfaces true conflicts to a merge
// function — the Dynamo-style pattern, with stamps instead of version
// vectors, so replicas can be cloned with no identifier assignment.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"versionstamp/internal/kvstore"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The store starts on one node; a second node is cloned from it (every
	// key's stamp forks — replica creation without coordination). Each
	// replica is striped over lock-per-shard partitions, so heavy
	// concurrent traffic never serializes on a single lock; a batched
	// write takes each involved shard lock once.
	nodeA := kvstore.NewReplica("node-a")
	nodeA.PutBatch(map[string][]byte{
		"cart:42": []byte("2×book"),
		"cart:77": []byte("1×pen"),
	})
	nodeB := nodeA.Clone("node-b")
	fmt.Printf("node-b cloned from node-a (%d shards each)\n", nodeB.Shards())

	// Writes land on different nodes (optimistic replication).
	nodeA.Put("cart:42", []byte("2×book,1×lamp")) // customer adds a lamp via A
	nodeB.Delete("cart:77")                       // cart 77 checked out via B
	nodeB.Put("cart:90", []byte("3×mug"))         // new cart via B

	// Anti-entropy: causality decides everything automatically here.
	res, err := kvstore.Sync(nodeA, nodeB, nil)
	if err != nil {
		return err
	}
	fmt.Printf("sync #1: %d transferred, %d reconciled, %d conflicts\n",
		res.Transferred, res.Reconciled, len(res.Conflicts))
	dump("node-a", nodeA)
	dump("node-b", nodeB)

	// Concurrent edits to the same cart: a real conflict.
	nodeA.Put("cart:42", []byte("2×book,1×lamp,1×rug"))
	nodeB.Put("cart:42", []byte("2×book,1×lamp,6×candle"))
	res, err = kvstore.Sync(nodeA, nodeB, nil)
	if err != nil {
		return err
	}
	fmt.Printf("sync #2 without resolver: conflicts on %v (left untouched)\n", res.Conflicts)

	// Resolve with a merge function (here: keep both order lines).
	res, err = kvstore.Sync(nodeA, nodeB, kvstore.KeepBoth([]byte(" & ")))
	if err != nil {
		return err
	}
	fmt.Printf("sync #3 with resolver: %d merged\n", res.Merged)
	dump("node-a", nodeA)
	dump("node-b", nodeB)

	// Crash/restart: stamps survive serialization.
	snap, err := nodeB.Snapshot()
	if err != nil {
		return err
	}
	restored, err := kvstore.Restore(snap)
	if err != nil {
		return err
	}
	nodeA.Put("cart:90", []byte("3×mug,1×spoon"))
	res, err = kvstore.Sync(nodeA, restored, nil)
	if err != nil {
		return err
	}
	fmt.Printf("after node-b restart, sync reconciled %d keys\n", res.Reconciled)
	dump("restored", restored)
	return nil
}

func dump(label string, r *kvstore.Replica) {
	fmt.Printf("  [%s]\n", label)
	keys := r.Keys()
	live := r.GetBatch(keys) // one lock acquisition per shard, not per key
	for _, k := range keys {
		if v, ok := live[k]; ok {
			fmt.Printf("    %-8s = %s\n", k, v)
		} else {
			fmt.Printf("    %-8s = (deleted)\n", k)
		}
	}
}

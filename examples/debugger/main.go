// Debugger: post-hoc analysis of a recorded replicated execution — the
// §1.2 use case the paper contrasts with frontier ordering: "one may want
// to inquire how c2 and a1 relate and determine that a1 is in the past of
// c2", even though a1 and c2 never coexist. The recorder keeps the whole
// derivation DAG (a global view, fine for offline debugging) while the live
// replicas only ever carried their version stamps.
//
//	go run ./examples/debugger
package main

import (
	"fmt"
	"log"

	"versionstamp/internal/causalgraph"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Re-record the execution of the paper's Figure 2.
	rec, a1 := causalgraph.New()
	a2, err := rec.Update(a1)
	if err != nil {
		return err
	}
	b1, c1, err := rec.Fork(a2)
	if err != nil {
		return err
	}
	d1, e1, err := rec.Fork(b1)
	if err != nil {
		return err
	}
	c2, err := rec.Update(c1)
	if err != nil {
		return err
	}
	c3, err := rec.Update(c2)
	if err != nil {
		return err
	}
	f1, err := rec.Join(e1, c3)
	if err != nil {
		return err
	}
	g1, err := rec.Join(d1, f1)
	if err != nil {
		return err
	}

	names := map[causalgraph.ElemID]string{
		a1: "a1", a2: "a2", b1: "b1", c1: "c1", d1: "d1",
		e1: "e1", c2: "c2", c3: "c3", f1: "f1", g1: "g1",
	}
	fmt.Printf("recorded %d elements, %d live\n\n", rec.Size(), rec.LiveCount())

	// The paper's query: how do a1 and c2 relate?
	rel, err := rec.Relation(a1, c2)
	if err != nil {
		return err
	}
	fmt.Printf("a1 vs c2: %v (the paper's §1.2 example)\n", rel)

	// Elements connected by a path can never have coexisted.
	queries := [][2]causalgraph.ElemID{{a1, c2}, {d1, c2}, {b1, c1}, {e1, g1}}
	for _, q := range queries {
		ok, err := rec.CoexistencePossible(q[0], q[1])
		if err != nil {
			return err
		}
		fmt.Printf("could %s and %s coexist in some frontier? %v\n",
			names[q[0]], names[q[1]], ok)
	}

	// Update-history ordering across the whole run (not just frontiers).
	fmt.Println()
	for _, q := range [][2]causalgraph.ElemID{{d1, c3}, {c3, g1}, {d1, e1}} {
		o, err := rec.CompareHistories(q[0], q[1])
		if err != nil {
			return err
		}
		h0, _ := rec.History(q[0])
		h1, _ := rec.History(q[1])
		fmt.Printf("histories: %s (%d updates) vs %s (%d updates): %v\n",
			names[q[0]], len(h0), names[q[1]], len(h1), o)
	}
	return nil
}

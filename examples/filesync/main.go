// Filesync: the PANASYNC scenario from the paper's own deployment —
// dependency tracking among file copies carried across disconnected
// machines, with conflict detection and reconciliation.
//
//	go run ./examples/filesync
package main

import (
	"fmt"
	"log"

	"versionstamp/internal/panasync"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fs := panasync.NewMemFS()
	ws := panasync.NewWorkspace(fs)

	// A report lives on the office desktop.
	if err := fs.WriteFile("office/report.txt", []byte("draft v1")); err != nil {
		return err
	}
	if err := ws.Init("office/report.txt"); err != nil {
		return err
	}
	fmt.Println("tracked office/report.txt")

	// Copy it to a laptop before travelling (fork — no server consulted).
	if err := ws.Copy("office/report.txt", "laptop/report.txt"); err != nil {
		return err
	}
	// On the plane, the laptop copy spawns a phone copy. Still no network.
	if err := ws.Copy("laptop/report.txt", "phone/report.txt"); err != nil {
		return err
	}
	fmt.Println("copied to laptop and phone (offline)")

	// Independent edits while partitioned.
	if err := fs.WriteFile("laptop/report.txt", []byte("draft v2 (laptop)")); err != nil {
		return err
	}
	if err := ws.Edit("laptop/report.txt"); err != nil {
		return err
	}
	if err := fs.WriteFile("office/report.txt", []byte("draft v2 (office)")); err != nil {
		return err
	}
	if err := ws.Edit("office/report.txt"); err != nil {
		return err
	}

	// Back online: how do the copies relate?
	show := func(a, b string) {
		rel, err := ws.Compare(a, b)
		if err != nil {
			fmt.Printf("  %-22s vs %-22s: %v\n", a, b, err)
			return
		}
		fmt.Printf("  %-22s vs %-22s: %v\n", a, b, rel)
	}
	fmt.Println("relations after the trip:")
	show("phone/report.txt", "laptop/report.txt")  // before: phone is stale
	show("laptop/report.txt", "office/report.txt") // concurrent: true conflict

	// Stale copy refreshes automatically.
	if err := ws.Sync("phone/report.txt", "laptop/report.txt", nil); err != nil {
		return err
	}
	fmt.Println("phone refreshed from laptop")

	// The real conflict needs a merge; the merge counts as a new update.
	merge := func(_, _ string, a, b []byte) ([]byte, error) {
		return []byte(fmt.Sprintf("merged: %q + %q", a, b)), nil
	}
	if err := ws.Sync("laptop/report.txt", "office/report.txt", merge); err != nil {
		return err
	}
	content, err := fs.ReadFile("office/report.txt")
	if err != nil {
		return err
	}
	fmt.Printf("office content after merge: %s\n", content)

	fmt.Println("final state of all copies:")
	tracked, err := ws.Tracked()
	if err != nil {
		return err
	}
	for _, st := range tracked {
		fmt.Printf("  %-22s stamp %v\n", st.Path, st.Stamp)
	}
	return nil
}

// Quickstart: the version-stamp lifecycle on the public API — fork replicas
// with no coordination, update them, detect dominance and conflicts, and
// merge back.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"versionstamp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One replica owns the whole document.
	doc := versionstamp.Seed()
	fmt.Println("seed:                ", doc)

	// Replicate — entirely offline, no identifier service involved.
	laptop, phone := doc.Fork()
	fmt.Println("fork -> laptop:      ", laptop)
	fmt.Println("fork -> phone:       ", phone)

	// Edit on the laptop.
	laptop = laptop.Update()
	fmt.Println("laptop after update: ", laptop)
	fmt.Println("phone vs laptop:     ", versionstamp.Compare(phone, laptop)) // before

	// Edit on the phone too: now the copies conflict.
	phone = phone.Update()
	fmt.Println("phone after update:  ", phone)
	fmt.Println("phone vs laptop:     ", versionstamp.Compare(phone, laptop)) // concurrent

	// Reconcile: synchronize both replicas (join + fork). Afterwards they
	// are equivalent and both dominate the old copies.
	var err error
	laptop, phone, err = versionstamp.Sync(laptop, phone)
	if err != nil {
		return err
	}
	fmt.Println("after sync, laptop:  ", laptop)
	fmt.Println("after sync, phone:   ", phone)
	fmt.Println("phone vs laptop:     ", versionstamp.Compare(phone, laptop)) // equal

	// Retire the phone replica into the laptop: the identity space
	// collapses back to the seed's.
	merged, err := versionstamp.Join(laptop, phone)
	if err != nil {
		return err
	}
	fmt.Println("retire phone -> doc: ", merged) // [ε|ε]

	// Stamps serialize for storage or network transfer.
	wire, err := merged.MarshalBinary()
	if err != nil {
		return err
	}
	back, _, err := versionstamp.Decode(wire)
	if err != nil {
		return err
	}
	fmt.Printf("wire format:          %x -> %v\n", wire, back)
	return nil
}

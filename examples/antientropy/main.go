// Antientropy: three replica processes synchronizing pairwise over real TCP
// connections on localhost — the weakly connected topology of the paper,
// where any two replicas that find connectivity exchange state and stamps
// decide what propagates.
//
//	go run ./examples/antientropy
package main

import (
	"fmt"
	"log"

	"versionstamp/internal/antientropy"
	"versionstamp/internal/kvstore"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Three replicas; two of them also listen for peers.
	hub := kvstore.NewReplica("hub")
	edge1 := kvstore.NewReplica("edge-1")
	edge2 := kvstore.NewReplica("edge-2")

	hubSrv := antientropy.NewServer(hub, kvstore.KeepBoth([]byte(" | ")))
	hubAddr, err := hubSrv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer hubSrv.Close()
	edge1Srv := antientropy.NewServer(edge1, kvstore.KeepBoth([]byte(" | ")))
	edge1Addr, err := edge1Srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer edge1Srv.Close()
	fmt.Printf("hub on %s, edge-1 on %s\n", hubAddr, edge1Addr)

	// Disconnected writes everywhere.
	hub.Put("config", []byte("v1"))
	edge1.Put("sensor:1", []byte("21.5C"))
	edge2.Put("sensor:2", []byte("17.0C"))

	// edge-2 finds the hub: one TCP round trip merges both directions.
	res, err := antientropy.SyncWith(hubAddr, edge2)
	if err != nil {
		return err
	}
	fmt.Printf("edge-2 <-> hub: %d keys transferred\n", res.Transferred)

	// Heavy-traffic variant: one scoped round per store stripe, all in
	// flight concurrently — the hub locks only the matching stripe per
	// request, so this scales with cores instead of serializing.
	res, err = antientropy.SyncWithSharded(hubAddr, edge2)
	if err != nil {
		return err
	}
	fmt.Printf("edge-2 <-> hub (per-shard, %d stripes): idle resync, %d reconciled\n",
		edge2.Shards(), res.Reconciled)

	// Delta anti-entropy: digests travel first, and stamp comparison prunes
	// every key the peers already agree on. Right after the sync above the
	// pair is converged, so this round ships zero entries — the wire carries
	// only the digest, no matter how large the keyspace is.
	res, err = antientropy.SyncWithDelta(hubAddr, edge2)
	if err != nil {
		return err
	}
	fmt.Printf("edge-2 <-> hub (delta, converged): %d entries shipped, %d pruned by stamps, %dB on the wire\n",
		res.Transferred+res.Reconciled+res.Merged, res.Pruned, res.BytesSent+res.BytesReceived)

	// Hierarchical anti-entropy over a pooled session: per-stripe summary
	// hashes travel first, so the converged keyspace costs O(stripes) bytes
	// — not even the digests move — and repeated rounds reuse one TCP
	// connection instead of dialing each time.
	pool := antientropy.NewPool()
	defer pool.Close()
	for round := 1; round <= 3; round++ {
		res, err = pool.SyncWith(hubAddr, edge2)
		if err != nil {
			return err
		}
		fmt.Printf("edge-2 <-> hub (v3 round %d): %d/%d stripes skipped by summaries, %dB on the wire, %d dial(s) so far\n",
			round, res.StripesSkipped, edge2.Shards(), res.BytesSent+res.BytesReceived, pool.Dials())
	}

	// edge-2 later meets edge-1 directly (no hub involved).
	res, err = antientropy.SyncWith(edge1Addr, edge2)
	if err != nil {
		return err
	}
	fmt.Printf("edge-2 <-> edge-1: %d keys transferred\n", res.Transferred)

	// A conflicting config edit on hub and edge-1, resolved at sync time.
	hub.Put("config", []byte("v2-hub"))
	edge1.Put("config", []byte("v2-edge"))
	if _, err := antientropy.SyncWith(hubAddr, edge1); err != nil {
		return err
	}
	got, _ := hub.Get("config")
	fmt.Printf("config after conflicting edits and sync: %q\n", got)

	// Gossip closes the loop: edge-2 pulls the merged config from edge-1.
	if _, err := antientropy.SyncWith(edge1Addr, edge2); err != nil {
		return err
	}
	for _, r := range []*kvstore.Replica{hub, edge1, edge2} {
		fmt.Printf("  [%s]\n", r.Label())
		for _, k := range r.Keys() {
			if v, ok := r.Get(k); ok {
				fmt.Printf("    %-9s = %s\n", k, v)
			}
		}
	}
	return nil
}

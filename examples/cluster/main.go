// Cluster: the partitioned store end to end. A nine-node ring with
// three-way replication takes quorum writes, loses an owner mid-flight,
// keeps serving quorum reads on the surviving replicas, queues hinted
// handoff for the dead node, and — once the node revives — drains the
// hints and converges back to full replication through owner-scoped
// anti-entropy.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"versionstamp/internal/antientropy"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== a 9-node ring, R=3, quorum 2-of-3 ==")
	c, err := antientropy.NewRingCluster(antientropy.RingConfig{
		Nodes:        9,
		Replication:  3,
		Stripes:      64,
		Seed:         42,
		SuspectAfter: 1,
		DeadAfter:    2,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	keys := make([]string, 12)
	for i := range keys {
		keys[i] = fmt.Sprintf("sensor-%02d", i)
		if _, err := c.Write(keys[i], []byte(fmt.Sprintf("reading-%d", i))); err != nil {
			return err
		}
	}
	st, err := c.Status(0)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d keys; node-0 owns %d of 64 stripes, serves at %s\n",
		len(keys), len(st.OwnedStripes), st.Addr)

	// Any node will do for the demo — every node owns ~R*stripes/N of the
	// keyspace, so node-4 is some keys' coordinator and others' replica.
	const victim = 4
	fmt.Printf("\n== node-%d dies ==\n", victim)
	if err := c.Kill(victim); err != nil {
		return err
	}
	// A couple of rounds let heartbeats lapse: peers suspect, then declare
	// the node dead. Ownership does NOT move — hinted handoff bridges the
	// outage instead of reshuffling the ring.
	for i := 0; i < 4; i++ {
		if _, err := c.GossipRound(2); err != nil {
			return err
		}
	}
	if st, err = c.Status(0); err != nil {
		return err
	}
	for _, m := range st.Members {
		if m.ID == fmt.Sprintf("node-%d", victim) {
			fmt.Printf("node-0's opinion of node-%d: %s\n", victim, m.State)
		}
	}

	// Writes to stripes the dead node owns still reach quorum: the
	// coordinator applies locally, syncs the other live owner, and queues a
	// durable hint for the dead one.
	fmt.Println("writes continue through the outage:")
	for i := range keys {
		acks, err := c.Write(keys[i], []byte(fmt.Sprintf("reading-%d-v2", i)))
		if err != nil {
			return fmt.Errorf("write during outage: %w", err)
		}
		_ = acks
	}
	fmt.Printf("  all %d writes reached quorum; %d hints queued for node-%d\n",
		len(keys), c.HintsPending(), victim)

	// Quorum reads succeed on the surviving owners.
	v, ok, err := c.Read("sensor-03")
	if err != nil || !ok {
		return fmt.Errorf("quorum read during outage: %v ok=%v", err, ok)
	}
	fmt.Printf("  quorum read sensor-03 = %q\n", v)

	fmt.Printf("\n== node-%d comes back ==\n", victim)
	if err := c.Revive(victim); err != nil {
		return err
	}
	rounds, err := c.GossipUntilConverged(60)
	if err != nil {
		return err
	}
	fmt.Printf("converged in %d gossip rounds; pending hints: %d\n",
		rounds, c.HintsPending())
	if st, err = c.Status(victim); err != nil {
		return err
	}
	fmt.Printf("node-%d is back, owning %d stripes again\n", victim, len(st.OwnedStripes))
	v, ok, err = c.Read("sensor-03")
	if err != nil || !ok {
		return fmt.Errorf("post-revival read: %v ok=%v", err, ok)
	}
	fmt.Printf("sensor-03 = %q, replicated 3-way once more\n", v)
	return nil
}

package versionstamp_test

import (
	"fmt"

	"versionstamp"
)

// The full replica lifecycle: fork offline, update, compare, reconcile.
func Example() {
	doc := versionstamp.Seed()
	laptop, phone := doc.Fork() // no coordination needed
	laptop = laptop.Update()

	fmt.Println(versionstamp.Compare(phone, laptop))

	phone = phone.Update()
	fmt.Println(versionstamp.Compare(phone, laptop))

	laptop, phone, _ = versionstamp.Sync(laptop, phone)
	fmt.Println(versionstamp.Compare(phone, laptop))
	// Output:
	// before
	// concurrent
	// equal
}

func ExampleSeed() {
	fmt.Println(versionstamp.Seed())
	// Output: [ε|ε]
}

func ExampleStamp_Fork() {
	a, b := versionstamp.Seed().Fork()
	fmt.Println(a, b)
	// Output: [ε|0] [ε|1]
}

func ExampleStamp_Update() {
	a, _ := versionstamp.Seed().Fork()
	fmt.Println(a.Update())
	// Output: [0|0]
}

func ExampleJoin() {
	a, b := versionstamp.Seed().Fork()
	a = a.Update()
	merged, _ := versionstamp.Join(a, b)
	fmt.Println(merged) // reduction restores the seed's identity
	// Output: [ε|ε]
}

func ExampleCompare() {
	a, b := versionstamp.Seed().Fork()
	a = a.Update()
	fmt.Println(versionstamp.Compare(a, b))
	fmt.Println(versionstamp.Compare(b, a))
	// Output:
	// after
	// before
}

func ExampleParse() {
	s, err := versionstamp.Parse("[1|0+1]")
	fmt.Println(s, err)
	// Output: [1|0+1] <nil>
}

func ExampleStamp_MarshalBinary() {
	data, _ := versionstamp.Seed().MarshalBinary()
	back, n, _ := versionstamp.Decode(data)
	fmt.Printf("%d bytes -> %v\n", n, back)
	// Output: 5 bytes -> [ε|ε]
}

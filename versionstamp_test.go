package versionstamp_test

import (
	"errors"
	"testing"

	"versionstamp"
)

// TestQuickstart exercises the package documentation's quick-start flow on
// the public API only.
func TestQuickstart(t *testing.T) {
	a := versionstamp.Seed()
	a, b := a.Fork()
	a = a.Update()
	if got := versionstamp.Compare(a, b); got != versionstamp.After {
		t.Fatalf("Compare = %v, want after", got)
	}
	if got := versionstamp.Compare(b, a); got != versionstamp.Before {
		t.Fatalf("Compare = %v, want before", got)
	}
	merged, err := versionstamp.Join(a, b)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if merged.String() != "[ε|ε]" {
		t.Fatalf("merged = %v, want [ε|ε]", merged)
	}
}

func TestPublicSync(t *testing.T) {
	a, b := versionstamp.Seed().Fork()
	a = a.Update()
	sa, sb, err := versionstamp.Sync(a, b)
	if err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if versionstamp.Compare(sa, sb) != versionstamp.Equal {
		t.Error("synced replicas must be equal")
	}
}

func TestPublicParseRoundTrip(t *testing.T) {
	s := versionstamp.MustParse("[1|0+1]")
	back, err := versionstamp.Parse(s.String())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !back.Equal(s) {
		t.Fatalf("round trip %v -> %v", s, back)
	}
	if _, err := versionstamp.Parse("[broken"); err == nil {
		t.Error("Parse must reject garbage")
	}
}

func TestPublicBinaryDecode(t *testing.T) {
	s := versionstamp.MustParse("[1|0+1]")
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, used, err := versionstamp.Decode(data)
	if err != nil || used != len(data) {
		t.Fatalf("Decode = %v, %d, %v", back, used, err)
	}
	if !back.Equal(s) {
		t.Fatal("binary round trip changed the stamp")
	}
}

func TestPublicJoinError(t *testing.T) {
	s := versionstamp.Seed()
	_, err := versionstamp.Join(s, s)
	if !errors.Is(err, versionstamp.ErrOverlappingIDs) {
		t.Fatalf("Join(s,s) = %v, want ErrOverlappingIDs", err)
	}
}

func TestPublicNames(t *testing.T) {
	u, err := versionstamp.ParseName("1")
	if err != nil {
		t.Fatal(err)
	}
	i, err := versionstamp.ParseName("0+1")
	if err != nil {
		t.Fatal(err)
	}
	s, err := versionstamp.NewStamp(u, i)
	if err != nil {
		t.Fatalf("NewStamp: %v", err)
	}
	if s.String() != "[1|0+1]" {
		t.Errorf("stamp = %v", s)
	}
	// Invariant-violating construction fails.
	bad, _ := versionstamp.ParseName("0")
	if _, err := versionstamp.NewStamp(u, bad); err == nil {
		t.Error("NewStamp must validate u ⊑ i")
	}
}

func TestPublicCheckFrontier(t *testing.T) {
	a, b := versionstamp.Seed().Fork()
	if err := versionstamp.CheckFrontier([]versionstamp.Stamp{a, b}); err != nil {
		t.Errorf("valid frontier rejected: %v", err)
	}
	if err := versionstamp.CheckFrontier([]versionstamp.Stamp{a, a}); err == nil {
		t.Error("duplicated stamp frontier must fail I2")
	}
}

// TestPartitionedReplicationStory documents the paper's headline scenario
// end to end on the public API: replicas created and reconciled with zero
// coordination.
func TestPartitionedReplicationStory(t *testing.T) {
	// A document lives on a desktop.
	desktop := versionstamp.Seed()
	// Partition: a laptop clones it in an airplane (no network).
	desktop, laptop := desktop.Fork()
	// Deeper partition: the laptop clones to a phone mid-flight.
	laptop, phone := laptop.Fork()
	// Everyone edits independently.
	desktop = desktop.Update()
	phone = phone.Update()
	if err := versionstamp.CheckFrontier([]versionstamp.Stamp{desktop, laptop, phone}); err != nil {
		t.Fatalf("frontier: %v", err)
	}
	// Landing: phone and laptop sync; laptop now dominates the old laptop
	// state and conflicts with desktop.
	phone, laptop, err := versionstamp.Sync(phone, laptop)
	if err != nil {
		t.Fatal(err)
	}
	if versionstamp.Compare(laptop, desktop) != versionstamp.Concurrent {
		t.Error("laptop vs desktop should conflict")
	}
	// Reconcile laptop and desktop; then retire the phone into the laptop.
	laptop, desktop, err = versionstamp.Sync(laptop, desktop)
	if err != nil {
		t.Fatal(err)
	}
	if versionstamp.Compare(laptop, desktop) != versionstamp.Equal {
		t.Error("after reconciliation laptop and desktop must be equal")
	}
	survivor, err := versionstamp.Join(laptop, phone)
	if err != nil {
		t.Fatal(err)
	}
	// Two replicas remain: survivor and desktop.
	if err := versionstamp.CheckFrontier([]versionstamp.Stamp{survivor, desktop}); err != nil {
		t.Fatalf("final frontier: %v", err)
	}
}
